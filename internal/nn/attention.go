package nn

import (
	"math"

	"pactrain/internal/par"
	"pactrain/internal/tensor"
)

// MultiHeadAttention implements standard scaled-dot-product multi-head
// self-attention over (N, T, D) token tensors, the core of the ViT workload
// in the paper's evaluation. D must be divisible by the head count.
//
// Both passes chunk over samples via the par budget: every per-sample
// temporary lives in that sample's mhaScratch slot, forward writes disjoint
// output slices, and backward computes per-sample weight-gradient partials
// in parallel and then folds them into the shared parameter gradients in a
// serial ascending-sample pass — the exact float accumulation sequence of
// the scalar loop, keeping training bit-identical at any budget.
type MultiHeadAttention struct {
	Wq, Wk, Wv, Wo *Parameter
	Bq, Bk, Bv, Bo *Parameter

	D, Heads, Dh int

	lastX   *tensor.Tensor
	scratch []*mhaScratch // one slot per sample, reused across steps
	out     *tensor.Tensor
	dx      *tensor.Tensor
}

// mhaScratch holds every per-sample temporary of one attention
// forward+backward, so steady-state steps allocate nothing. The xs/gs/dxs
// view headers are retargeted with Rebind each step.
type mhaScratch struct {
	xs, gs, dxs *tensor.Tensor // (T, D) views into batch tensors

	q, k, v, o, y  *tensor.Tensor   // (T, D)
	attn           []*tensor.Tensor // per head (T, T)
	qh, kh, vh, oh *tensor.Tensor   // (T, Dh)

	do, dq, dk, dv     *tensor.Tensor // (T, D)
	doh, dVh, dQh, dKh *tensor.Tensor // (T, Dh)
	dAttn              *tensor.Tensor // (T, T)
	dxPart             *tensor.Tensor // (T, D)

	// Per-sample weight-gradient partials, folded serially into the shared
	// parameter gradients.
	dWq, dWk, dWv, dWo *tensor.Tensor // (D, D)
}

func newMHAScratch(t, d, heads, dh int) *mhaScratch {
	sc := &mhaScratch{
		xs: tensor.New(t, d), gs: tensor.New(t, d), dxs: tensor.New(t, d),
		q: tensor.New(t, d), k: tensor.New(t, d), v: tensor.New(t, d),
		o: tensor.New(t, d), y: tensor.New(t, d),
		qh: tensor.New(t, dh), kh: tensor.New(t, dh), vh: tensor.New(t, dh), oh: tensor.New(t, dh),
		do: tensor.New(t, d), dq: tensor.New(t, d), dk: tensor.New(t, d), dv: tensor.New(t, d),
		doh: tensor.New(t, dh), dVh: tensor.New(t, dh), dQh: tensor.New(t, dh), dKh: tensor.New(t, dh),
		dAttn: tensor.New(t, t), dxPart: tensor.New(t, d),
		dWq: tensor.New(d, d), dWk: tensor.New(d, d), dWv: tensor.New(d, d), dWo: tensor.New(d, d),
	}
	sc.attn = make([]*tensor.Tensor, heads)
	for h := range sc.attn {
		sc.attn[h] = tensor.New(t, t)
	}
	return sc
}

// NewMultiHeadAttention constructs an attention layer with Xavier-initialized
// projections.
func NewMultiHeadAttention(name string, r *tensor.RNG, d, heads int) *MultiHeadAttention {
	if d%heads != 0 {
		panic("nn: attention dim must be divisible by head count")
	}
	mk := func(suffix string) *Parameter {
		return NewParameter(name+"."+suffix, tensor.XavierInit(r, d, d, d, d))
	}
	mkb := func(suffix string) *Parameter {
		return NewParameter(name+"."+suffix, tensor.New(d))
	}
	return &MultiHeadAttention{
		Wq: mk("q.weight"), Wk: mk("k.weight"), Wv: mk("v.weight"), Wo: mk("out.weight"),
		Bq: mkb("q.bias"), Bk: mkb("k.bias"), Bv: mkb("v.bias"), Bo: mkb("out.bias"),
		D: d, Heads: heads, Dh: d / heads,
	}
}

// ensureScratch sizes the per-sample scratch pool for batch size n and
// sequence length t.
func (l *MultiHeadAttention) ensureScratch(n, t int) {
	if len(l.scratch) >= n && l.scratch[0].q.Dim(0) == t {
		return
	}
	l.scratch = make([]*mhaScratch, n)
	for s := range l.scratch {
		l.scratch[s] = newMHAScratch(t, l.D, l.Heads, l.Dh)
	}
}

// projectInto computes dst = x·W + b for x of shape (T, D).
func projectInto(dst, x *tensor.Tensor, w, b *Parameter) {
	tensor.MatMulInto(dst, x, w.W)
	t, d := dst.Dim(0), dst.Dim(1)
	od, bd := dst.Data(), b.W.Data()
	for i := 0; i < t; i++ {
		row := od[i*d : (i+1)*d]
		for j := range row {
			row[j] += bd[j]
		}
	}
}

// colBlockInto copies columns [from,from+w) of a (T, D) matrix into a
// (T, w) matrix.
func colBlockInto(dst, x *tensor.Tensor, from int) {
	t, d := x.Dim(0), x.Dim(1)
	w := dst.Dim(1)
	xd, od := x.Data(), dst.Data()
	for i := 0; i < t; i++ {
		copy(od[i*w:(i+1)*w], xd[i*d+from:i*d+from+w])
	}
}

// addColBlock accumulates a (T, w) matrix into columns [from,from+w) of dst.
func addColBlock(dst, src *tensor.Tensor, from int) {
	t, d := dst.Dim(0), dst.Dim(1)
	w := src.Dim(1)
	dd, sd := dst.Data(), src.Data()
	for i := 0; i < t; i++ {
		drow := dd[i*d+from : i*d+from+w]
		srow := sd[i*w : (i+1)*w]
		for j := range drow {
			drow[j] += srow[j]
		}
	}
}

// Forward implements Layer.
func (l *MultiHeadAttention) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, t, d := x.Dim(0), x.Dim(1), x.Dim(2)
	l.lastX = x
	l.ensureScratch(n, t)
	l.out = ensure3(l.out, n, t, d)
	scale := float32(1 / math.Sqrt(float64(l.Dh)))

	work := 4 * n * t * d * d
	if par.PlanChunks(n, work) == 1 {
		for s := 0; s < n; s++ {
			l.forwardSample(x, scale, s)
		}
	} else {
		par.ForChunksWork(n, work, func(_, lo, hi int) {
			for s := lo; s < hi; s++ {
				l.forwardSample(x, scale, s)
			}
		})
	}
	return l.out
}

// forwardSample runs attention for one sample into its scratch slot and the
// sample's slice of the output tensor.
func (l *MultiHeadAttention) forwardSample(x *tensor.Tensor, scale float32, s int) {
	t, d := x.Dim(1), x.Dim(2)
	sc := l.scratch[s]
	sc.xs.Rebind(x.Data()[s*t*d : (s+1)*t*d])
	projectInto(sc.q, sc.xs, l.Wq, l.Bq)
	projectInto(sc.k, sc.xs, l.Wk, l.Bk)
	projectInto(sc.v, sc.xs, l.Wv, l.Bv)
	sc.o.Zero()
	for h := 0; h < l.Heads; h++ {
		from := h * l.Dh
		colBlockInto(sc.qh, sc.q, from)
		colBlockInto(sc.kh, sc.k, from)
		colBlockInto(sc.vh, sc.v, from)
		scores := sc.attn[h]
		tensor.MatMulTransBInto(scores, sc.qh, sc.kh)
		scores.ScaleInPlace(scale)
		softmaxRows(scores)
		tensor.MatMulInto(sc.oh, scores, sc.vh)
		addColBlock(sc.o, sc.oh, from)
	}
	projectInto(sc.y, sc.o, l.Wo, l.Bo)
	copy(l.out.Data()[s*t*d:(s+1)*t*d], sc.y.Data())
}

// softmaxRows applies softmax to each row of a rank-2 tensor in place.
func softmaxRows(x *tensor.Tensor) {
	t, c := x.Dim(0), x.Dim(1)
	d := x.Data()
	for i := 0; i < t; i++ {
		row := d[i*c : (i+1)*c]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			row[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range row {
			row[j] *= inv
		}
	}
}

// Backward implements Layer.
func (l *MultiHeadAttention) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, t, d := grad.Dim(0), grad.Dim(1), grad.Dim(2)
	l.dx = ensure3(l.dx, n, t, d)
	scale := float32(1 / math.Sqrt(float64(l.Dh)))

	// Phase 1 (parallel over samples): per-sample dx slices and per-sample
	// weight-gradient partials. No shared state is written.
	work := 8 * n * t * d * d
	if par.PlanChunks(n, work) == 1 {
		for s := 0; s < n; s++ {
			l.backwardSample(grad, scale, s)
		}
	} else {
		par.ForChunksWork(n, work, func(_, lo, hi int) {
			for s := lo; s < hi; s++ {
				l.backwardSample(grad, scale, s)
			}
		})
	}

	// Phase 2 (serial, ascending samples): fold the partials into the shared
	// parameter gradients in exactly the scalar accumulation order.
	for s := 0; s < n; s++ {
		sc := l.scratch[s]
		tensor.AxpyInto(l.Wo.Grad, 1, sc.dWo)
		accumBias(l.Bo.Grad, sc.gs)
		tensor.AxpyInto(l.Wq.Grad, 1, sc.dWq)
		accumBias(l.Bq.Grad, sc.dq)
		tensor.AxpyInto(l.Wk.Grad, 1, sc.dWk)
		accumBias(l.Bk.Grad, sc.dk)
		tensor.AxpyInto(l.Wv.Grad, 1, sc.dWv)
		accumBias(l.Bv.Grad, sc.dv)
	}
	return l.dx
}

// backwardSample computes one sample's gradients: dx slice plus the
// per-sample dW partials left in scratch for the serial fold.
func (l *MultiHeadAttention) backwardSample(grad *tensor.Tensor, scale float32, s int) {
	t, d := grad.Dim(1), grad.Dim(2)
	sc := l.scratch[s]
	sc.gs.Rebind(grad.Data()[s*t*d : (s+1)*t*d])
	sc.dxs.Rebind(l.dx.Data()[s*t*d : (s+1)*t*d])
	sc.xs.Rebind(l.lastX.Data()[s*t*d : (s+1)*t*d])

	// Output projection: y = o·Wo + bo.
	tensor.MatMulTransAInto(sc.dWo, sc.o, sc.gs)
	tensor.MatMulTransBInto(sc.do, sc.gs, l.Wo.W)

	sc.dq.Zero()
	sc.dk.Zero()
	sc.dv.Zero()
	for h := 0; h < l.Heads; h++ {
		from := h * l.Dh
		colBlockInto(sc.doh, sc.do, from)
		attn := sc.attn[h]
		colBlockInto(sc.vh, sc.v, from)
		colBlockInto(sc.qh, sc.q, from)
		colBlockInto(sc.kh, sc.k, from)

		// oh = attn · vh.
		tensor.MatMulTransBInto(sc.dAttn, sc.doh, sc.vh)
		tensor.MatMulTransAInto(sc.dVh, attn, sc.doh)

		// Softmax backward per row: ds = A ⊙ (dA − Σ(dA⊙A)).
		ad, dad := attn.Data(), sc.dAttn.Data()
		for i := 0; i < t; i++ {
			var dot float64
			for j := 0; j < t; j++ {
				dot += float64(dad[i*t+j]) * float64(ad[i*t+j])
			}
			for j := 0; j < t; j++ {
				dad[i*t+j] = ad[i*t+j] * (dad[i*t+j] - float32(dot))
			}
		}
		sc.dAttn.ScaleInPlace(scale)

		// scores = qh·khᵀ.
		tensor.MatMulInto(sc.dQh, sc.dAttn, sc.kh)
		tensor.MatMulTransAInto(sc.dKh, sc.dAttn, sc.qh)

		addColBlock(sc.dq, sc.dQh, from)
		addColBlock(sc.dk, sc.dKh, from)
		addColBlock(sc.dv, sc.dVh, from)
	}

	// Input projections: q = x·Wq + bq etc. Weight partials stay in scratch;
	// the dx slice accumulates its three parts here (zero + q + k + v, the
	// scalar order).
	sc.dxs.Zero()
	tensor.MatMulTransAInto(sc.dWq, sc.xs, sc.dq)
	tensor.MatMulTransBInto(sc.dxPart, sc.dq, l.Wq.W)
	tensor.AxpyInto(sc.dxs, 1, sc.dxPart)
	tensor.MatMulTransAInto(sc.dWk, sc.xs, sc.dk)
	tensor.MatMulTransBInto(sc.dxPart, sc.dk, l.Wk.W)
	tensor.AxpyInto(sc.dxs, 1, sc.dxPart)
	tensor.MatMulTransAInto(sc.dWv, sc.xs, sc.dv)
	tensor.MatMulTransBInto(sc.dxPart, sc.dv, l.Wv.W)
	tensor.AxpyInto(sc.dxs, 1, sc.dxPart)
}

// accumBias adds the column sums of a (T, D) gradient into a (D) bias grad.
func accumBias(biasGrad, dy *tensor.Tensor) {
	t, d := dy.Dim(0), dy.Dim(1)
	bg, gd := biasGrad.Data(), dy.Data()
	for i := 0; i < t; i++ {
		row := gd[i*d : (i+1)*d]
		for j := range row {
			bg[j] += row[j]
		}
	}
}

// Params implements Layer.
func (l *MultiHeadAttention) Params() []*Parameter {
	return []*Parameter{l.Wq, l.Bq, l.Wk, l.Bk, l.Wv, l.Bv, l.Wo, l.Bo}
}

// PatchEmbed splits an image into non-overlapping patches, projects each to
// an embedding, prepends a learnable class token, and adds positional
// embeddings: (N, C, H, W) → (N, T+1, D) with T = (H/ps)·(W/ps).
type PatchEmbed struct {
	Proj   *Parameter // (D, C*ps*ps)
	Bias   *Parameter // (D)
	Cls    *Parameter // (D)
	PosEmb *Parameter // (T+1, D)

	C, PS, D, T int

	lastCols  *tensor.Tensor
	lastShape []int

	proj  *tensor.Tensor
	out   *tensor.Tensor
	dProj *tensor.Tensor
	dW    *tensor.Tensor
	dcols *tensor.Tensor
	dx    *tensor.Tensor
}

// NewPatchEmbed constructs the embedding for images of (c, h, w) with square
// patch size ps and embedding dimension d.
func NewPatchEmbed(name string, r *tensor.RNG, c, h, w, ps, d int) *PatchEmbed {
	if h%ps != 0 || w%ps != 0 {
		panic("nn: image size must be divisible by patch size")
	}
	t := (h / ps) * (w / ps)
	patch := c * ps * ps
	return &PatchEmbed{
		Proj:   NewParameter(name+".proj.weight", tensor.XavierInit(r, patch, d, d, patch)),
		Bias:   NewParameter(name+".proj.bias", tensor.New(d)),
		Cls:    NewParameter(name+".cls", tensor.Randn(r, 0.02, d)),
		PosEmb: NewParameter(name+".pos", tensor.Randn(r, 0.02, t+1, d)),
		C:      c, PS: ps, D: d, T: t,
	}
}

// Forward implements Layer.
func (l *PatchEmbed) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n := x.Dim(0)
	l.lastShape = append(l.lastShape[:0], x.Shape()...)
	patch := l.Proj.W.Dim(1)
	l.lastCols = ensure2(l.lastCols, n*l.T, patch)
	tensor.Im2ColInto(l.lastCols, x, l.PS, l.PS, l.PS, 0) // (N*T, patch)
	l.proj = ensure2(l.proj, n*l.T, l.D)
	tensor.MatMulTransBInto(l.proj, l.lastCols, l.Proj.W)

	l.out = ensure3(l.out, n, l.T+1, l.D)
	od, pd := l.out.Data(), l.proj.Data()
	bd, cd, ed := l.Bias.W.Data(), l.Cls.W.Data(), l.PosEmb.W.Data()
	for s := 0; s < n; s++ {
		base := s * (l.T + 1) * l.D
		for j := 0; j < l.D; j++ {
			od[base+j] = cd[j] + ed[j]
		}
		for tk := 0; tk < l.T; tk++ {
			src := pd[(s*l.T+tk)*l.D : (s*l.T+tk+1)*l.D]
			dst := od[base+(tk+1)*l.D : base+(tk+2)*l.D]
			pos := ed[(tk+1)*l.D : (tk+2)*l.D]
			for j := range dst {
				dst[j] = src[j] + bd[j] + pos[j]
			}
		}
	}
	return l.out
}

// Backward implements Layer.
func (l *PatchEmbed) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	gd := grad.Data()
	cg, eg, bg := l.Cls.Grad.Data(), l.PosEmb.Grad.Data(), l.Bias.Grad.Data()
	l.dProj = ensure2(l.dProj, n*l.T, l.D)
	dpd := l.dProj.Data()
	for s := 0; s < n; s++ {
		base := s * (l.T + 1) * l.D
		for j := 0; j < l.D; j++ {
			cg[j] += gd[base+j]
			eg[j] += gd[base+j]
		}
		for tk := 0; tk < l.T; tk++ {
			row := gd[base+(tk+1)*l.D : base+(tk+2)*l.D]
			pos := eg[(tk+1)*l.D : (tk+2)*l.D]
			dst := dpd[(s*l.T+tk)*l.D : (s*l.T+tk+1)*l.D]
			for j, v := range row {
				pos[j] += v
				bg[j] += v
				dst[j] = v
			}
		}
	}
	// dW = dProjᵀ × cols → (D, patch).
	l.dW = ensure2(l.dW, l.D, l.Proj.W.Dim(1))
	tensor.MatMulTransAInto(l.dW, l.dProj, l.lastCols)
	tensor.AxpyInto(l.Proj.Grad, 1, l.dW)
	// dcols = dProj × W.
	l.dcols = ensure2(l.dcols, n*l.T, l.Proj.W.Dim(1))
	tensor.MatMulInto(l.dcols, l.dProj, l.Proj.W)
	h, w := l.lastShape[2], l.lastShape[3]
	l.dx = ensure4(l.dx, n, l.C, h, w)
	tensor.Col2ImInto(l.dx, l.dcols, l.PS, l.PS, l.PS, 0)
	return l.dx
}

// Params implements Layer.
func (l *PatchEmbed) Params() []*Parameter {
	return []*Parameter{l.Proj, l.Bias, l.Cls, l.PosEmb}
}

// TransformerBlock is a pre-norm transformer encoder block:
//
//	x = x + MHA(LN1(x)); x = x + MLP(LN2(x))
//
// with a GELU MLP of expansion factor mlpRatio.
type TransformerBlock struct {
	LN1  *LayerNorm
	Attn *MultiHeadAttention
	LN2  *LayerNorm
	FC1  *Linear
	Act  *GELU
	FC2  *Linear

	lastShape []int

	x1, out, dx1, dxOut *tensor.Tensor // (N, T, D)
	// Flat/shaped view headers retargeted with Rebind each step.
	hFlat, gradFlat *tensor.Tensor // (N*T, D)
	h4View, gmView  *tensor.Tensor // (N, T, D)
}

// NewTransformerBlock builds a block of width d with the given head count
// and MLP expansion ratio.
func NewTransformerBlock(name string, r *tensor.RNG, d, heads, mlpRatio int) *TransformerBlock {
	return &TransformerBlock{
		LN1:  NewLayerNorm(name+".ln1", d),
		Attn: NewMultiHeadAttention(name+".attn", r, d, heads),
		LN2:  NewLayerNorm(name+".ln2", d),
		FC1:  NewLinear(name+".mlp.fc1", r, d, d*mlpRatio),
		Act:  NewGELU(),
		FC2:  NewLinear(name+".mlp.fc2", r, d*mlpRatio, d),
	}
}

// Forward implements Layer.
func (l *TransformerBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, t, d := x.Dim(0), x.Dim(1), x.Dim(2)
	l.lastShape = append(l.lastShape[:0], n, t, d)
	a := l.Attn.Forward(l.LN1.Forward(x, train), train)
	l.x1 = ensure3(l.x1, n, t, d)
	tensor.AddInto(l.x1, x, a)
	h := l.LN2.Forward(l.x1, train)
	l.hFlat = ensure2(l.hFlat, n*t, d)
	l.hFlat.Rebind(h.Data())
	h2 := l.FC1.Forward(l.hFlat, train)
	h3 := l.Act.Forward(h2, train)
	h4 := l.FC2.Forward(h3, train)
	l.h4View = ensure3(l.h4View, n, t, d)
	l.h4View.Rebind(h4.Data())
	l.out = ensure3(l.out, n, t, d)
	tensor.AddInto(l.out, l.x1, l.h4View)
	return l.out
}

// Backward implements Layer.
func (l *TransformerBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, t, d := l.lastShape[0], l.lastShape[1], l.lastShape[2]
	// MLP branch.
	l.gradFlat = ensure2(l.gradFlat, n*t, d)
	l.gradFlat.Rebind(grad.Data())
	gm := l.FC2.Backward(l.gradFlat)
	gm = l.Act.Backward(gm)
	gm = l.FC1.Backward(gm)
	l.gmView = ensure3(l.gmView, n, t, d)
	l.gmView.Rebind(gm.Data())
	gn := l.LN2.Backward(l.gmView)
	l.dx1 = ensure3(l.dx1, n, t, d)
	tensor.AddInto(l.dx1, grad, gn)
	// Attention branch.
	ga := l.Attn.Backward(l.dx1)
	ga = l.LN1.Backward(ga)
	l.dxOut = ensure3(l.dxOut, n, t, d)
	tensor.AddInto(l.dxOut, l.dx1, ga)
	return l.dxOut
}

// Params implements Layer.
func (l *TransformerBlock) Params() []*Parameter {
	var ps []*Parameter
	ps = append(ps, l.LN1.Params()...)
	ps = append(ps, l.Attn.Params()...)
	ps = append(ps, l.LN2.Params()...)
	ps = append(ps, l.FC1.Params()...)
	ps = append(ps, l.FC2.Params()...)
	return ps
}

// TokenPool extracts the class token (index 0) from (N, T, D), producing
// (N, D) for the classifier head.
type TokenPool struct {
	lastShape []int
	out       *tensor.Tensor
	dx        *tensor.Tensor
}

// NewTokenPool returns a class-token pooling layer.
func NewTokenPool() *TokenPool { return &TokenPool{} }

// Forward implements Layer.
func (l *TokenPool) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, t, d := x.Dim(0), x.Dim(1), x.Dim(2)
	l.lastShape = append(l.lastShape[:0], n, t, d)
	l.out = ensure2(l.out, n, d)
	xd, od := x.Data(), l.out.Data()
	for s := 0; s < n; s++ {
		copy(od[s*d:(s+1)*d], xd[s*t*d:s*t*d+d])
	}
	return l.out
}

// Backward implements Layer.
func (l *TokenPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, t, d := l.lastShape[0], l.lastShape[1], l.lastShape[2]
	l.dx = ensure3(l.dx, n, t, d)
	l.dx.Zero()
	gd, dd := grad.Data(), l.dx.Data()
	for s := 0; s < n; s++ {
		copy(dd[s*t*d:s*t*d+d], gd[s*d:(s+1)*d])
	}
	return l.dx
}

// Params implements Layer.
func (l *TokenPool) Params() []*Parameter { return nil }
