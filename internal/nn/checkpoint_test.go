package nn

import (
	"bytes"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := DefaultLiteConfig(10, 33)
	src := NewVGGLite(cfg)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	// Load into a differently initialized replica.
	cfg2 := cfg
	cfg2.Seed = 99
	dst := NewVGGLite(cfg2)
	if Checksum(src) == Checksum(dst) {
		t.Fatal("test premise broken: replicas already identical")
	}
	if err := LoadWeights(&buf, dst); err != nil {
		t.Fatal(err)
	}
	if Checksum(src) != Checksum(dst) {
		t.Fatal("round trip did not restore weights")
	}
	for i, p := range src.Params() {
		q := dst.Params()[i]
		for j := range p.W.Data() {
			if p.W.Data()[j] != q.W.Data()[j] {
				t.Fatalf("param %s[%d] differs after load", p.Name, j)
			}
		}
	}
}

func TestCheckpointRejectsBadMagic(t *testing.T) {
	m := NewMLP(DefaultLiteConfig(10, 1), 16)
	err := LoadWeights(strings.NewReader("NOTACKPT..."), m)
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("expected magic error, got %v", err)
	}
}

func TestCheckpointRejectsShapeMismatch(t *testing.T) {
	a := NewMLP(DefaultLiteConfig(10, 1), 16)
	b := NewMLP(DefaultLiteConfig(10, 1), 32) // different hidden width
	var buf bytes.Buffer
	if err := SaveWeights(&buf, a); err != nil {
		t.Fatal(err)
	}
	err := LoadWeights(&buf, b)
	if err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("expected shape error, got %v", err)
	}
}

func TestCheckpointRejectsUnknownParam(t *testing.T) {
	a := NewMLP(DefaultLiteConfig(10, 1), 16)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, a); err != nil {
		t.Fatal(err)
	}
	// A VGG model has entirely different parameter names.
	b := NewVGGLite(DefaultLiteConfig(10, 1))
	if err := LoadWeights(&buf, b); err == nil {
		t.Fatal("expected unknown-parameter error")
	}
}

func TestCheckpointTruncated(t *testing.T) {
	a := NewMLP(DefaultLiteConfig(10, 1), 16)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, a); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()/2]
	if err := LoadWeights(bytes.NewReader(short), a); err == nil {
		t.Fatal("expected error on truncated checkpoint")
	}
}

func TestChecksumSensitive(t *testing.T) {
	m := NewMLP(DefaultLiteConfig(10, 5), 16)
	before := Checksum(m)
	m.Params()[0].W.Data()[0] += 1
	if Checksum(m) == before {
		t.Fatal("checksum insensitive to weight change")
	}
}
