package nn

import (
	"math"

	"pactrain/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits of
// shape (N, K) against integer class labels, returning the loss and the
// gradient with respect to the logits (already divided by N, ready to feed
// into Model.Backward).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic("nn: label count does not match batch size")
	}
	grad := tensor.New(n, k)
	ld, gd := logits.Data(), grad.Data()
	var loss float64
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := ld[i*k : (i+1)*k]
		grow := gd[i*k : (i+1)*k]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			grow[j] = float32(e)
			sum += e
		}
		label := labels[i]
		if label < 0 || label >= k {
			panic("nn: label out of range")
		}
		p := float64(grow[label]) / sum
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		invSum := float32(1 / sum)
		for j := range grow {
			grow[j] *= invSum
		}
		grow[label] -= 1
		for j := range grow {
			grow[j] *= float32(invN)
		}
	}
	return loss * invN, grad
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Dim(0), logits.Dim(1)
	ld := logits.Data()
	correct := 0
	for i := 0; i < n; i++ {
		row := ld[i*k : (i+1)*k]
		arg := 0
		best := row[0]
		for j, v := range row {
			if v > best {
				best, arg = v, j
			}
		}
		if arg == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
