package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpoint format: the paper's workflow starts from a pre-trained model
// (§III-A), so the library supports saving and restoring named weights.
// The format is a simple little-endian binary layout:
//
//	magic "PACTCKPT" | uint32 version | uint32 paramCount
//	per parameter: uint32 nameLen | name | uint32 rank | uint32 dims… |
//	               float32 data…
//
// Parameters are matched by name on load, so a checkpoint survives
// unrelated architectural reordering but rejects shape changes.

const (
	checkpointMagic   = "PACTCKPT"
	checkpointVersion = 1
)

// SaveWeights writes all model parameters to w.
func SaveWeights(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(checkpointVersion)); err != nil {
		return err
	}
	params := m.Params()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		shape := p.W.Shape()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		for _, v := range p.W.Data() {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadWeights restores parameters by name from r. Every parameter in the
// checkpoint must exist in the model with an identical shape; model
// parameters missing from the checkpoint are left untouched.
func LoadWeights(r io.Reader, m *Model) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != checkpointVersion {
		return fmt.Errorf("nn: unsupported checkpoint version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	byName := make(map[string]*Parameter, len(m.Params()))
	for _, p := range m.Params() {
		byName[p.Name] = p
	}
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		if nameLen > 1<<16 {
			return fmt.Errorf("nn: implausible name length %d", nameLen)
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return err
		}
		name := string(nameBytes)
		var rank uint32
		if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
			return err
		}
		if rank > 8 {
			return fmt.Errorf("nn: implausible rank %d for %s", rank, name)
		}
		shape := make([]int, rank)
		n := 1
		for d := range shape {
			var dim uint32
			if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
				return err
			}
			shape[d] = int(dim)
			n *= int(dim)
		}
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("nn: checkpoint parameter %q not in model", name)
		}
		if !sameShape(p.W.Shape(), shape) {
			return fmt.Errorf("nn: parameter %q shape %v does not match checkpoint %v",
				name, p.W.Shape(), shape)
		}
		data := p.W.Data()
		for j := 0; j < n; j++ {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return err
			}
			data[j] = math.Float32frombits(bits)
		}
	}
	return nil
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Checksum returns a cheap order-sensitive digest of the model weights,
// used by tests and by replica-divergence checks.
func Checksum(m *Model) float64 {
	var sum float64
	for i, p := range m.Params() {
		for j, v := range p.W.Data() {
			sum += float64(v) * float64((i+1)*31+(j%97))
		}
	}
	return sum
}
