package nn

import (
	"strings"
	"testing"

	"pactrain/internal/tensor"
)

func TestModelZooBuilds(t *testing.T) {
	cfg := DefaultLiteConfig(10, 1)
	for _, name := range []string{"VGG19", "ResNet18", "ResNet152", "ViT-Base-16", "MLP"} {
		m, err := NewLiteByName(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.NumParameters() == 0 {
			t.Fatalf("%s has no parameters", name)
		}
		x := tensor.Randn(tensor.NewRNG(3), 1, 2, 3, 16, 16)
		out := m.Forward(x, true)
		if out.Dim(0) != 2 || out.Dim(1) != 10 {
			t.Fatalf("%s: output shape %v, want (2,10)", name, out.Shape())
		}
		loss, grad := SoftmaxCrossEntropy(out, []int{1, 2})
		if loss <= 0 {
			t.Fatalf("%s: non-positive initial loss %v", name, loss)
		}
		m.ZeroGrad()
		m.Backward(grad)
		nonZero := 0
		for _, p := range m.Params() {
			if p.Grad.CountNonZero() > 0 {
				nonZero++
			}
		}
		if nonZero < len(m.Params())/2 {
			t.Fatalf("%s: only %d/%d params received gradient", name, nonZero, len(m.Params()))
		}
	}
}

func TestResNet152DeeperThanResNet18(t *testing.T) {
	cfg := DefaultLiteConfig(10, 1)
	r18 := NewResNet18Lite(cfg)
	r152 := NewResNet152Lite(cfg)
	if r152.NumParameters() <= r18.NumParameters() {
		t.Fatalf("ResNet152 twin (%d params) should exceed ResNet18 twin (%d)",
			r152.NumParameters(), r18.NumParameters())
	}
}

func TestSameSeedGivesIdenticalReplicas(t *testing.T) {
	cfg := DefaultLiteConfig(10, 42)
	a := NewVGGLite(cfg)
	b := NewVGGLite(cfg)
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatal("replica param counts differ")
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name {
			t.Fatalf("param %d name mismatch %q vs %q", i, pa[i].Name, pb[i].Name)
		}
		for j := range pa[i].W.Data() {
			if pa[i].W.Data()[j] != pb[i].W.Data()[j] {
				t.Fatalf("param %s differs at %d", pa[i].Name, j)
			}
		}
	}
}

func TestParameterNamesUnique(t *testing.T) {
	cfg := DefaultLiteConfig(10, 7)
	for _, name := range []string{"VGG19", "ResNet18", "ResNet152", "ViT-Base-16"} {
		m, err := NewLiteByName(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, p := range m.Params() {
			if seen[p.Name] {
				t.Fatalf("%s: duplicate parameter name %s", name, p.Name)
			}
			seen[p.Name] = true
		}
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	cfg := DefaultLiteConfig(10, 1)
	a := NewMLP(cfg, 16)
	cfg2 := cfg
	cfg2.Seed = 2
	b := NewMLP(cfg2, 16)
	b.CopyWeightsFrom(a)
	for i := range a.Params() {
		for j := range a.Params()[i].W.Data() {
			if a.Params()[i].W.Data()[j] != b.Params()[i].W.Data()[j] {
				t.Fatal("CopyWeightsFrom did not copy")
			}
		}
	}
}

// TestMLPLearnsSeparableTask verifies the full train loop machinery: an MLP
// must fit a linearly separable 2-class problem nearly perfectly.
func TestMLPLearnsSeparableTask(t *testing.T) {
	cfg := LiteConfig{InChannels: 1, ImageSize: 4, Classes: 2, Width: 8, Seed: 5}
	m := NewMLP(cfg, 32)
	opt := NewSGD(0.1, 0.9, 0)
	r := tensor.NewRNG(11)

	// Class 0: mean -1 in first half; class 1: mean +1.
	makeBatch := func(n int) (*tensor.Tensor, []int) {
		x := tensor.New(n, 1, 4, 4)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			cls := r.Intn(2)
			labels[i] = cls
			mean := float32(-1)
			if cls == 1 {
				mean = 1
			}
			for j := 0; j < 16; j++ {
				x.Data()[i*16+j] = mean + float32(r.NormFloat64()*0.3)
			}
		}
		return x, labels
	}

	var lastAcc float64
	for step := 0; step < 60; step++ {
		x, labels := makeBatch(16)
		out := m.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(out, labels)
		m.ZeroGrad()
		m.Backward(grad)
		opt.Step(m.Params())
		lastAcc = Accuracy(out, labels)
	}
	if lastAcc < 0.95 {
		t.Fatalf("MLP failed to fit separable task: acc %v", lastAcc)
	}
}

func TestSGDMomentumMatchesManualUpdate(t *testing.T) {
	p := NewParameter("w", tensor.FromSlice([]float32{1}, 1))
	opt := NewSGD(0.1, 0.9, 0)
	// Two steps with constant gradient 1.
	p.Grad.Data()[0] = 1
	opt.Step([]*Parameter{p})
	// v1 = 1; w = 1 - 0.1 = 0.9
	if w := p.W.Data()[0]; !almost(w, 0.9) {
		t.Fatalf("step1 w = %v", w)
	}
	p.Grad.Data()[0] = 1
	opt.Step([]*Parameter{p})
	// v2 = 0.9 + 1 = 1.9; w = 0.9 - 0.19 = 0.71
	if w := p.W.Data()[0]; !almost(w, 0.71) {
		t.Fatalf("step2 w = %v", w)
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := NewParameter("w", tensor.FromSlice([]float32{2}, 1))
	opt := NewSGD(0.5, 0, 0.1)
	opt.Step([]*Parameter{p}) // grad = 0 + 0.1*2 = 0.2; w = 2 - 0.1 = 1.9
	if w := p.W.Data()[0]; !almost(w, 1.9) {
		t.Fatalf("w = %v", w)
	}
}

func almost(a, b float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-5
}

func TestCosineLRBoundaries(t *testing.T) {
	if lr := CosineLR(1.0, 0.1, 0, 10); !almost(float32(lr), 1.0) {
		t.Fatalf("start lr = %v", lr)
	}
	if lr := CosineLR(1.0, 0.1, 9, 10); !almost(float32(lr), 0.1) {
		t.Fatalf("end lr = %v", lr)
	}
	mid := CosineLR(1.0, 0.1, 5, 11)
	if mid > 1.0 || mid < 0.1 {
		t.Fatalf("mid lr out of range: %v", mid)
	}
}

func TestStepLR(t *testing.T) {
	got := StepLR(1.0, 15, []int{10, 20}, 0.1)
	if !almost(float32(got), 0.1) {
		t.Fatalf("lr = %v", got)
	}
	got = StepLR(1.0, 25, []int{10, 20}, 0.1)
	if !almost(float32(got), 0.01) {
		t.Fatalf("lr = %v", got)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		2, 1, 0,
		0, 3, 1,
		1, 0, 5,
	}, 3, 3)
	if acc := Accuracy(logits, []int{0, 1, 2}); acc != 1 {
		t.Fatalf("acc = %v", acc)
	}
	if acc := Accuracy(logits, []int{1, 1, 2}); acc < 0.66 || acc > 0.67 {
		t.Fatalf("acc = %v", acc)
	}
}

func TestProfileByName(t *testing.T) {
	for _, p := range Profiles() {
		got, err := ProfileByName(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Params != p.Params {
			t.Fatalf("%s params mismatch", p.Name)
		}
		if got.GradBytes() != got.Params*4 {
			t.Fatal("GradBytes must be 4 bytes/param")
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
	if !strings.Contains(ProfileVGG19.Name, "VGG") {
		t.Fatal("profile naming broken")
	}
}

func TestProfileOrderingMatchesPaperSizes(t *testing.T) {
	// The paper's communication volumes: VGG19 > ViT-B/16 > ResNet152 > ResNet18.
	if !(ProfileVGG19.Params > ProfileViTBase16.Params &&
		ProfileViTBase16.Params > ProfileResNet152.Params &&
		ProfileResNet152.Params > ProfileResNet18.Params) {
		t.Fatal("profile parameter ordering wrong")
	}
}
