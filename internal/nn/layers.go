package nn

import (
	"math"

	"pactrain/internal/par"
	"pactrain/internal/tensor"
)

// Linear is a fully connected layer computing y = xW + b for x of shape
// (N, in) and W of shape (in, out).
type Linear struct {
	Weight *Parameter
	Bias   *Parameter

	lastInput *tensor.Tensor
	out       *tensor.Tensor // forward output, reused across steps
	dW        *tensor.Tensor // per-step weight-gradient scratch
	dx        *tensor.Tensor // backward output, reused across steps
}

// NewLinear constructs a Linear layer with Kaiming-initialized weights. The
// name prefixes the two parameters as name+".weight" / name+".bias".
func NewLinear(name string, r *tensor.RNG, in, out int) *Linear {
	return &Linear{
		Weight: NewParameter(name+".weight", tensor.KaimingInit(r, in, in, out)),
		Bias:   NewParameter(name+".bias", tensor.New(out)),
	}
}

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	l.lastInput = x
	n := x.Dim(0)
	out := l.Weight.W.Dim(1)
	l.out = ensure2(l.out, n, out)
	y := l.out
	tensor.MatMulInto(y, x, l.Weight.W)
	bd := l.Bias.W.Data()
	yd := y.Data()
	for i := 0; i < n; i++ {
		row := yd[i*out : (i+1)*out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := l.lastInput
	in, out := l.Weight.W.Dim(0), l.Weight.W.Dim(1)
	n := x.Dim(0)

	l.dW = ensure2(l.dW, in, out)
	tensor.MatMulTransAInto(l.dW, x, grad)
	tensor.AxpyInto(l.Weight.Grad, 1, l.dW)

	gb := l.Bias.Grad.Data()
	gd := grad.Data()
	for i := 0; i < n; i++ {
		row := gd[i*out : (i+1)*out]
		for j := range row {
			gb[j] += row[j]
		}
	}

	l.dx = ensure2(l.dx, n, in)
	tensor.MatMulTransBInto(l.dx, grad, l.Weight.W)
	return l.dx
}

// Params implements Layer.
func (l *Linear) Params() []*Parameter { return []*Parameter{l.Weight, l.Bias} }

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	mask []bool
	out  *tensor.Tensor
	dx   *tensor.Tensor
}

// NewReLU returns a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	l.out = ensureLike(l.out, x)
	xd, d := x.Data(), l.out.Data()
	if cap(l.mask) < len(d) {
		l.mask = make([]bool, len(d))
	}
	l.mask = l.mask[:len(d)]
	for i, v := range xd {
		if v > 0 {
			l.mask[i] = true
			d[i] = v
		} else {
			l.mask[i] = false
			d[i] = 0
		}
	}
	return l.out
}

// Backward implements Layer.
func (l *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	l.dx = ensureLike(l.dx, grad)
	gd, d := grad.Data(), l.dx.Data()
	for i, v := range gd {
		if l.mask[i] {
			d[i] = v
		} else {
			d[i] = 0
		}
	}
	return l.dx
}

// Params implements Layer.
func (l *ReLU) Params() []*Parameter { return nil }

// GELU applies the Gaussian error linear unit using the tanh approximation,
// the activation used by the ViT models in the paper's workload set.
type GELU struct {
	lastInput *tensor.Tensor
	out       *tensor.Tensor
	dx        *tensor.Tensor
}

// NewGELU returns a GELU activation.
func NewGELU() *GELU { return &GELU{} }

const geluC = 0.7978845608028654 // sqrt(2/pi)

// Forward implements Layer. The elementwise map chunks over the par budget
// (trivially bit-exact); the scalar path avoids the dispatch closure so the
// budget-1 step stays allocation-free.
func (l *GELU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	l.lastInput = x
	l.out = ensureLike(l.out, x)
	xd, d := x.Data(), l.out.Data()
	n := len(xd)
	if par.PlanChunks(n, n) == 1 {
		geluForwardRange(xd, d, 0, n)
		return l.out
	}
	par.For(n, func(lo, hi int) { geluForwardRange(xd, d, lo, hi) })
	return l.out
}

func geluForwardRange(xd, d []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		fv := float64(xd[i])
		d[i] = float32(0.5 * fv * (1 + math.Tanh(geluC*(fv+0.044715*fv*fv*fv))))
	}
}

// Backward implements Layer.
func (l *GELU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	l.dx = ensureLike(l.dx, grad)
	gin, gd := grad.Data(), l.dx.Data()
	xd := l.lastInput.Data()
	n := len(gd)
	if par.PlanChunks(n, n) == 1 {
		geluBackwardRange(xd, gin, gd, 0, n)
		return l.dx
	}
	par.For(n, func(lo, hi int) { geluBackwardRange(xd, gin, gd, lo, hi) })
	return l.dx
}

func geluBackwardRange(xd, gin, gd []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		x := float64(xd[i])
		inner := geluC * (x + 0.044715*x*x*x)
		t := math.Tanh(inner)
		dInner := geluC * (1 + 3*0.044715*x*x)
		dgelu := 0.5*(1+t) + 0.5*x*(1-t*t)*dInner
		gd[i] = gin[i] * float32(dgelu)
	}
}

// Params implements Layer.
func (l *GELU) Params() []*Parameter { return nil }

// Dropout zeroes a fraction p of activations during training and scales the
// survivors by 1/(1-p) (inverted dropout). During evaluation it is the
// identity.
type Dropout struct {
	P   float64
	rng *tensor.RNG

	mask []bool
	out  *tensor.Tensor
	dx   *tensor.Tensor
}

// NewDropout constructs a dropout layer with its own deterministic RNG
// stream.
func NewDropout(p float64, rng *tensor.RNG) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (l *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || l.P <= 0 {
		l.mask = nil
		return x
	}
	l.out = ensureLike(l.out, x)
	xd, d := x.Data(), l.out.Data()
	if cap(l.mask) < len(d) {
		l.mask = make([]bool, len(d))
	}
	l.mask = l.mask[:len(d)]
	scale := float32(1 / (1 - l.P))
	// The RNG stream is inherently sequential, so this loop stays serial.
	for i := range d {
		if l.rng.Float64() < l.P {
			l.mask[i] = false
			d[i] = 0
		} else {
			l.mask[i] = true
			d[i] = xd[i] * scale
		}
	}
	return l.out
}

// Backward implements Layer.
func (l *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.mask == nil {
		return grad
	}
	l.dx = ensureLike(l.dx, grad)
	gd, d := grad.Data(), l.dx.Data()
	scale := float32(1 / (1 - l.P))
	for i := range d {
		if l.mask[i] {
			d[i] = gd[i] * scale
		} else {
			d[i] = 0
		}
	}
	return l.dx
}

// Params implements Layer.
func (l *Dropout) Params() []*Parameter { return nil }

// Flatten reshapes (N, ...) to (N, prod(...)). Backward restores the shape.
type Flatten struct {
	lastShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (l *Flatten) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	l.lastShape = append(l.lastShape[:0], x.Shape()...)
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (l *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(l.lastShape...)
}

// Params implements Layer.
func (l *Flatten) Params() []*Parameter { return nil }

// Residual computes y = body(x) + shortcut(x) followed by ReLU, the building
// block of the ResNet-shaped models. If shortcut is nil the identity is
// used, which requires body to preserve shape.
type Residual struct {
	Body     Layer
	Shortcut Layer

	reluMask []bool
	out      *tensor.Tensor
	g        *tensor.Tensor
	dx       *tensor.Tensor
}

// NewResidual builds a residual block.
func NewResidual(body, shortcut Layer) *Residual {
	return &Residual{Body: body, Shortcut: shortcut}
}

// Forward implements Layer.
func (l *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := l.Body.Forward(x, train)
	skip := x
	if l.Shortcut != nil {
		skip = l.Shortcut.Forward(x, train)
	}
	l.out = ensureLike(l.out, main)
	tensor.AddInto(l.out, main, skip)
	d := l.out.Data()
	if cap(l.reluMask) < len(d) {
		l.reluMask = make([]bool, len(d))
	}
	l.reluMask = l.reluMask[:len(d)]
	for i, v := range d {
		if v > 0 {
			l.reluMask[i] = true
		} else {
			l.reluMask[i] = false
			d[i] = 0
		}
	}
	return l.out
}

// Backward implements Layer.
func (l *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	l.g = ensureLike(l.g, grad)
	gd, d := grad.Data(), l.g.Data()
	for i, v := range gd {
		if l.reluMask[i] {
			d[i] = v
		} else {
			d[i] = 0
		}
	}
	dMain := l.Body.Backward(l.g)
	dSkip := l.g
	if l.Shortcut != nil {
		dSkip = l.Shortcut.Backward(l.g)
	}
	l.dx = ensureLike(l.dx, dMain)
	tensor.AddInto(l.dx, dMain, dSkip)
	return l.dx
}

// Params implements Layer.
func (l *Residual) Params() []*Parameter {
	ps := l.Body.Params()
	if l.Shortcut != nil {
		ps = append(ps, l.Shortcut.Params()...)
	}
	return ps
}
