package nn

import (
	"pactrain/internal/par"
	"pactrain/internal/tensor"
)

// Conv2D is a 2-D convolution over (N, C, H, W) inputs using im2col
// lowering. Weights are stored as a (outC, inC*kh*kw) matrix; bias is per
// output channel.
type Conv2D struct {
	Weight *Parameter
	Bias   *Parameter

	InC, OutC      int
	KH, KW         int
	Stride, Pad    int
	lastCols       *tensor.Tensor
	lastInputShape []int

	// Scratch reused across steps.
	outMat *tensor.Tensor
	out    *tensor.Tensor
	gm     *tensor.Tensor
	dW     *tensor.Tensor
	dcols  *tensor.Tensor
	dx     *tensor.Tensor
}

// NewConv2D constructs a convolution layer with Kaiming initialization.
func NewConv2D(name string, r *tensor.RNG, inC, outC, k, stride, pad int) *Conv2D {
	fanIn := inC * k * k
	return &Conv2D{
		Weight: NewParameter(name+".weight", tensor.KaimingInit(r, fanIn, outC, fanIn)),
		Bias:   NewParameter(name+".bias", tensor.New(outC)),
		InC:    inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad,
	}
}

// Forward implements Layer.
func (l *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, _, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH := tensor.ConvOutSize(h, l.KH, l.Stride, l.Pad)
	outW := tensor.ConvOutSize(w, l.KW, l.Stride, l.Pad)
	spatial := outH * outW
	patch := l.Weight.W.Dim(1)
	rows := n * spatial
	l.lastCols = ensure2(l.lastCols, rows, patch)
	tensor.Im2ColInto(l.lastCols, x, l.KH, l.KW, l.Stride, l.Pad) // (N*outH*outW, inC*kh*kw)
	l.lastInputShape = append(l.lastInputShape[:0], x.Shape()...)

	// out = cols × Wᵀ : (rows, outC)
	l.outMat = ensure2(l.outMat, rows, l.OutC)
	tensor.MatMulTransBInto(l.outMat, l.lastCols, l.Weight.W)

	// Add bias and permute (N*outH*outW, outC) → (N, outC, outH, outW).
	// Images are disjoint, so the permute chunks over them bit-exactly.
	l.out = ensure4(l.out, n, l.OutC, outH, outW)
	od, md, bd := l.out.Data(), l.outMat.Data(), l.Bias.W.Data()
	work := rows * l.OutC
	if par.PlanChunks(n, work) == 1 {
		convPermuteForward(od, md, bd, l.OutC, spatial, 0, n)
	} else {
		outC := l.OutC
		par.ForChunksWork(n, work, func(_, lo, hi int) {
			convPermuteForward(od, md, bd, outC, spatial, lo, hi)
		})
	}
	return l.out
}

// convPermuteForward adds the bias and permutes images [lo,hi) from
// (rows, outC) layout to (N, outC, outH, outW).
func convPermuteForward(od, md, bd []float32, outC, spatial, lo, hi int) {
	for img := lo; img < hi; img++ {
		for s := 0; s < spatial; s++ {
			row := md[(img*spatial+s)*outC : (img*spatial+s+1)*outC]
			for f, v := range row {
				od[(img*outC+f)*spatial+s] = v + bd[f]
			}
		}
	}
}

// Backward implements Layer.
func (l *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := l.lastInputShape[0]
	h, w := l.lastInputShape[2], l.lastInputShape[3]
	outH := tensor.ConvOutSize(h, l.KH, l.Stride, l.Pad)
	outW := tensor.ConvOutSize(w, l.KW, l.Stride, l.Pad)
	spatial := outH * outW
	rows := n * spatial

	// Un-permute grad (N, outC, outH, outW) → (rows, outC). Images are
	// disjoint, so the permute chunks over them bit-exactly.
	l.gm = ensure2(l.gm, rows, l.OutC)
	gd, gmd := grad.Data(), l.gm.Data()
	work := rows * l.OutC
	if par.PlanChunks(n, work) == 1 {
		convPermuteBackward(gmd, gd, l.OutC, spatial, 0, n)
	} else {
		outC := l.OutC
		par.ForChunksWork(n, work, func(_, lo, hi int) {
			convPermuteBackward(gmd, gd, outC, spatial, lo, hi)
		})
	}

	// Bias gradient: column sums of gm, kept serial so each channel's terms
	// accumulate in the scalar row order.
	bg := l.Bias.Grad.Data()
	for r := 0; r < rows; r++ {
		row := gmd[r*l.OutC : (r+1)*l.OutC]
		for f, v := range row {
			bg[f] += v
		}
	}

	// Weight gradient: dW = gmᵀ × cols → (outC, inC*kh*kw).
	patch := l.Weight.W.Dim(1)
	l.dW = ensure2(l.dW, l.OutC, patch)
	tensor.MatMulTransAInto(l.dW, l.gm, l.lastCols)
	tensor.AxpyInto(l.Weight.Grad, 1, l.dW)

	// Input gradient: dcols = gm × W → (rows, patch); then col2im.
	l.dcols = ensure2(l.dcols, rows, patch)
	tensor.MatMulInto(l.dcols, l.gm, l.Weight.W)
	l.dx = ensure4(l.dx, n, l.InC, h, w)
	tensor.Col2ImInto(l.dx, l.dcols, l.KH, l.KW, l.Stride, l.Pad)
	return l.dx
}

// convPermuteBackward un-permutes images [lo,hi) of the gradient from
// (N, outC, outH, outW) layout to (rows, outC).
func convPermuteBackward(gmd, gd []float32, outC, spatial, lo, hi int) {
	for img := lo; img < hi; img++ {
		for f := 0; f < outC; f++ {
			src := gd[(img*outC+f)*spatial : (img*outC+f+1)*spatial]
			for s, v := range src {
				gmd[(img*spatial+s)*outC+f] = v
			}
		}
	}
}

// Params implements Layer.
func (l *Conv2D) Params() []*Parameter { return []*Parameter{l.Weight, l.Bias} }

// MaxPool2D is a max pooling layer over (N, C, H, W).
type MaxPool2D struct {
	K, Stride int

	argmax    []int
	lastShape []int
	out       *tensor.Tensor
	dx        *tensor.Tensor
}

// NewMaxPool2D constructs a max-pool with square window k and the given
// stride.
func NewMaxPool2D(k, stride int) *MaxPool2D { return &MaxPool2D{K: k, Stride: stride} }

// Forward implements Layer.
func (l *MaxPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH := tensor.ConvOutSize(h, l.K, l.Stride, 0)
	outW := tensor.ConvOutSize(w, l.K, l.Stride, 0)
	l.out = ensure4(l.out, n, c, outH, outW)
	out := l.out
	l.lastShape = append(l.lastShape[:0], x.Shape()...)
	if cap(l.argmax) < out.Len() {
		l.argmax = make([]int, out.Len())
	}
	l.argmax = l.argmax[:out.Len()]
	xd, od := x.Data(), out.Data()
	oi := 0
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * h * w
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					iy0, ix0 := oy*l.Stride, ox*l.Stride
					bestIdx := base + iy0*w + ix0
					best := xd[bestIdx]
					for ky := 0; ky < l.K; ky++ {
						iy := iy0 + ky
						if iy >= h {
							break
						}
						for kx := 0; kx < l.K; kx++ {
							ix := ix0 + kx
							if ix >= w {
								break
							}
							idx := base + iy*w + ix
							if xd[idx] > best {
								best, bestIdx = xd[idx], idx
							}
						}
					}
					od[oi] = best
					l.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	l.dx = ensure4(l.dx, l.lastShape[0], l.lastShape[1], l.lastShape[2], l.lastShape[3])
	l.dx.Zero()
	dd, gd := l.dx.Data(), grad.Data()
	for i, src := range l.argmax {
		dd[src] += gd[i]
	}
	return l.dx
}

// Params implements Layer.
func (l *MaxPool2D) Params() []*Parameter { return nil }

// GlobalAvgPool2D averages each channel's spatial plane, mapping
// (N, C, H, W) → (N, C). ResNet-style models use it before the classifier.
type GlobalAvgPool2D struct {
	lastShape []int
	out       *tensor.Tensor
	dx        *tensor.Tensor
}

// NewGlobalAvgPool2D constructs the layer.
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

// Forward implements Layer.
func (l *GlobalAvgPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	l.lastShape = append(l.lastShape[:0], x.Shape()...)
	l.out = ensure2(l.out, n, c)
	out := l.out
	xd, od := x.Data(), out.Data()
	area := h * w
	inv := 1 / float32(area)
	for i := 0; i < n*c; i++ {
		var s float32
		plane := xd[i*area : (i+1)*area]
		for _, v := range plane {
			s += v
		}
		od[i] = s * inv
	}
	return out
}

// Backward implements Layer.
func (l *GlobalAvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := l.lastShape[0], l.lastShape[1], l.lastShape[2], l.lastShape[3]
	l.dx = ensure4(l.dx, n, c, h, w)
	dx := l.dx
	dd, gd := dx.Data(), grad.Data()
	area := h * w
	inv := 1 / float32(area)
	for i := 0; i < n*c; i++ {
		g := gd[i] * inv
		plane := dd[i*area : (i+1)*area]
		for j := range plane {
			plane[j] = g
		}
	}
	return dx
}

// Params implements Layer.
func (l *GlobalAvgPool2D) Params() []*Parameter { return nil }
