package nn

import (
	"pactrain/internal/tensor"
)

// Conv2D is a 2-D convolution over (N, C, H, W) inputs using im2col
// lowering. Weights are stored as a (outC, inC*kh*kw) matrix; bias is per
// output channel.
type Conv2D struct {
	Weight *Parameter
	Bias   *Parameter

	InC, OutC      int
	KH, KW         int
	Stride, Pad    int
	lastCols       *tensor.Tensor
	lastInputShape []int
}

// NewConv2D constructs a convolution layer with Kaiming initialization.
func NewConv2D(name string, r *tensor.RNG, inC, outC, k, stride, pad int) *Conv2D {
	fanIn := inC * k * k
	return &Conv2D{
		Weight: NewParameter(name+".weight", tensor.KaimingInit(r, fanIn, outC, fanIn)),
		Bias:   NewParameter(name+".bias", tensor.New(outC)),
		InC:    inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad,
	}
}

// Forward implements Layer.
func (l *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, _, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH := tensor.ConvOutSize(h, l.KH, l.Stride, l.Pad)
	outW := tensor.ConvOutSize(w, l.KW, l.Stride, l.Pad)
	cols := tensor.Im2Col(x, l.KH, l.KW, l.Stride, l.Pad) // (N*outH*outW, inC*kh*kw)
	l.lastCols = cols
	l.lastInputShape = append(l.lastInputShape[:0], x.Shape()...)

	// out = cols × Wᵀ : (rows, outC)
	rows := cols.Dim(0)
	outMat := tensor.New(rows, l.OutC)
	tensor.MatMulTransBInto(outMat, cols, l.Weight.W)

	// Add bias and permute (N*outH*outW, outC) → (N, outC, outH, outW).
	out := tensor.New(n, l.OutC, outH, outW)
	od, md, bd := out.Data(), outMat.Data(), l.Bias.W.Data()
	spatial := outH * outW
	for img := 0; img < n; img++ {
		for s := 0; s < spatial; s++ {
			row := md[(img*spatial+s)*l.OutC : (img*spatial+s+1)*l.OutC]
			for f, v := range row {
				od[(img*l.OutC+f)*spatial+s] = v + bd[f]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := l.lastInputShape[0]
	h, w := l.lastInputShape[2], l.lastInputShape[3]
	outH := tensor.ConvOutSize(h, l.KH, l.Stride, l.Pad)
	outW := tensor.ConvOutSize(w, l.KW, l.Stride, l.Pad)
	spatial := outH * outW
	rows := n * spatial

	// Un-permute grad (N, outC, outH, outW) → (rows, outC).
	gm := tensor.New(rows, l.OutC)
	gd, gmd := grad.Data(), gm.Data()
	for img := 0; img < n; img++ {
		for f := 0; f < l.OutC; f++ {
			src := gd[(img*l.OutC+f)*spatial : (img*l.OutC+f+1)*spatial]
			for s, v := range src {
				gmd[(img*spatial+s)*l.OutC+f] = v
			}
		}
	}

	// Bias gradient: column sums of gm.
	bg := l.Bias.Grad.Data()
	for r := 0; r < rows; r++ {
		row := gmd[r*l.OutC : (r+1)*l.OutC]
		for f, v := range row {
			bg[f] += v
		}
	}

	// Weight gradient: dW = gmᵀ × cols → (outC, inC*kh*kw).
	patch := l.Weight.W.Dim(1)
	dW := tensor.New(l.OutC, patch)
	tensor.MatMulTransAInto(dW, gm, l.lastCols)
	tensor.AxpyInto(l.Weight.Grad, 1, dW)

	// Input gradient: dcols = gm × W → (rows, patch); then col2im.
	dcols := tensor.MatMul(gm, l.Weight.W)
	return tensor.Col2Im(dcols, n, l.InC, h, w, l.KH, l.KW, l.Stride, l.Pad)
}

// Params implements Layer.
func (l *Conv2D) Params() []*Parameter { return []*Parameter{l.Weight, l.Bias} }

// MaxPool2D is a max pooling layer over (N, C, H, W).
type MaxPool2D struct {
	K, Stride int

	argmax    []int
	lastShape []int
}

// NewMaxPool2D constructs a max-pool with square window k and the given
// stride.
func NewMaxPool2D(k, stride int) *MaxPool2D { return &MaxPool2D{K: k, Stride: stride} }

// Forward implements Layer.
func (l *MaxPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH := tensor.ConvOutSize(h, l.K, l.Stride, 0)
	outW := tensor.ConvOutSize(w, l.K, l.Stride, 0)
	out := tensor.New(n, c, outH, outW)
	l.lastShape = append(l.lastShape[:0], x.Shape()...)
	if cap(l.argmax) < out.Len() {
		l.argmax = make([]int, out.Len())
	}
	l.argmax = l.argmax[:out.Len()]
	xd, od := x.Data(), out.Data()
	oi := 0
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * h * w
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					iy0, ix0 := oy*l.Stride, ox*l.Stride
					bestIdx := base + iy0*w + ix0
					best := xd[bestIdx]
					for ky := 0; ky < l.K; ky++ {
						iy := iy0 + ky
						if iy >= h {
							break
						}
						for kx := 0; kx < l.K; kx++ {
							ix := ix0 + kx
							if ix >= w {
								break
							}
							idx := base + iy*w + ix
							if xd[idx] > best {
								best, bestIdx = xd[idx], idx
							}
						}
					}
					od[oi] = best
					l.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(l.lastShape...)
	dd, gd := dx.Data(), grad.Data()
	for i, src := range l.argmax {
		dd[src] += gd[i]
	}
	return dx
}

// Params implements Layer.
func (l *MaxPool2D) Params() []*Parameter { return nil }

// GlobalAvgPool2D averages each channel's spatial plane, mapping
// (N, C, H, W) → (N, C). ResNet-style models use it before the classifier.
type GlobalAvgPool2D struct {
	lastShape []int
}

// NewGlobalAvgPool2D constructs the layer.
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

// Forward implements Layer.
func (l *GlobalAvgPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	l.lastShape = append(l.lastShape[:0], x.Shape()...)
	out := tensor.New(n, c)
	xd, od := x.Data(), out.Data()
	area := h * w
	inv := 1 / float32(area)
	for i := 0; i < n*c; i++ {
		var s float32
		plane := xd[i*area : (i+1)*area]
		for _, v := range plane {
			s += v
		}
		od[i] = s * inv
	}
	return out
}

// Backward implements Layer.
func (l *GlobalAvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := l.lastShape[0], l.lastShape[1], l.lastShape[2], l.lastShape[3]
	dx := tensor.New(n, c, h, w)
	dd, gd := dx.Data(), grad.Data()
	area := h * w
	inv := 1 / float32(area)
	for i := 0; i < n*c; i++ {
		g := gd[i] * inv
		plane := dd[i*area : (i+1)*area]
		for j := range plane {
			plane[j] = g
		}
	}
	return dx
}

// Params implements Layer.
func (l *GlobalAvgPool2D) Params() []*Parameter { return nil }
