package nn

import (
	"math"
	"testing"

	"pactrain/internal/tensor"
)

// TestBatchNormEvalUsesRunningStats verifies train/eval mode semantics:
// after training-mode passes accumulate running statistics, an eval pass
// must normalize with those statistics (not the eval batch's own), so a
// shifted eval batch produces shifted outputs.
func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	r := tensor.NewRNG(1)
	bn := NewBatchNorm2D("bn", 2)
	// Accumulate running stats over several zero-mean batches.
	for i := 0; i < 50; i++ {
		x := tensor.Randn(r, 1, 8, 2, 4, 4)
		bn.Forward(x, true)
	}
	// Eval on a strongly shifted batch: mean of output should reflect the
	// shift (≈ +5 / running_std), not renormalize to 0.
	shifted := tensor.Full(5, 8, 2, 4, 4)
	out := bn.Forward(shifted, false)
	if m := out.Mean(); m < 2 {
		t.Fatalf("eval-mode output mean %v; running stats not used", m)
	}
	// Train-mode on the same batch would normalize toward 0 (variance is 0
	// → output ≈ beta = 0).
	outTrain := bn.Forward(shifted, true)
	if m := math.Abs(outTrain.Mean()); m > 0.5 {
		t.Fatalf("train-mode output mean %v; batch stats not used", m)
	}
}

func TestLayerNormNormalizesRows(t *testing.T) {
	r := tensor.NewRNG(2)
	ln := NewLayerNorm("ln", 16)
	x := tensor.Randn(r, 3, 4, 16)
	// Shift one row strongly; after LN its mean must return to ≈0.
	for i := 0; i < 16; i++ {
		x.Data()[i] += 100
	}
	out := ln.Forward(x, true)
	var rowMean float64
	for i := 0; i < 16; i++ {
		rowMean += float64(out.Data()[i])
	}
	rowMean /= 16
	if math.Abs(rowMean) > 1e-3 {
		t.Fatalf("layernorm row mean %v, want ≈0", rowMean)
	}
}

func TestMaxPoolUnevenInput(t *testing.T) {
	// 5x5 input with 2x2 stride-2 pool → 2x2 output, tail row/col dropped.
	x := tensor.Ones(1, 1, 5, 5)
	p := NewMaxPool2D(2, 2)
	out := p.Forward(x, true)
	if out.Dim(2) != 2 || out.Dim(3) != 2 {
		t.Fatalf("pool output shape %v", out.Shape())
	}
	// Backward must still route gradients only to visited positions.
	grad := tensor.Ones(1, 1, 2, 2)
	dx := p.Backward(grad)
	if dx.Len() != 25 {
		t.Fatalf("backward shape %v", dx.Shape())
	}
	if dx.Sum() != 4 {
		t.Fatalf("gradient mass %v, want 4", dx.Sum())
	}
}

func TestAttentionRowsSumToOne(t *testing.T) {
	r := tensor.NewRNG(3)
	attn := NewMultiHeadAttention("a", r, 8, 2)
	x := tensor.Randn(r, 1, 2, 5, 8)
	attn.Forward(x, true)
	for s := 0; s < 2; s++ {
		for h := 0; h < 2; h++ {
			a := attn.scratch[s].attn[h]
			for row := 0; row < 5; row++ {
				var sum float64
				for col := 0; col < 5; col++ {
					v := float64(a.At(row, col))
					if v < 0 {
						t.Fatal("negative attention weight")
					}
					sum += v
				}
				if math.Abs(sum-1) > 1e-5 {
					t.Fatalf("attention row sums to %v", sum)
				}
			}
		}
	}
}

func TestViTForwardDeterministic(t *testing.T) {
	cfg := DefaultLiteConfig(10, 9)
	a := NewViTLite(cfg, 32, 4, 2)
	b := NewViTLite(cfg, 32, 4, 2)
	r := tensor.NewRNG(5)
	x := tensor.Randn(r, 1, 2, 3, 16, 16)
	oa := a.Forward(x, false)
	ob := b.Forward(x, false)
	for i := range oa.Data() {
		if oa.Data()[i] != ob.Data()[i] {
			t.Fatal("same-seed ViT forward differs")
		}
	}
}

// TestTrainingReducesLoss is a sanity check on every zoo model: five SGD
// steps on one repeated batch must reduce the loss (memorization).
func TestTrainingReducesLoss(t *testing.T) {
	for _, name := range []string{"VGG19", "ResNet18", "ViT-Base-16"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := DefaultLiteConfig(10, 21)
			m, err := NewLiteByName(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			opt := NewSGD(0.02, 0.9, 0)
			r := tensor.NewRNG(7)
			x := tensor.Randn(r, 1, 4, 3, 16, 16)
			labels := []int{0, 1, 2, 3}
			var first, last float64
			for step := 0; step < 5; step++ {
				out := m.Forward(x, true)
				loss, grad := SoftmaxCrossEntropy(out, labels)
				if step == 0 {
					first = loss
				}
				last = loss
				m.ZeroGrad()
				m.Backward(grad)
				opt.Step(m.Params())
			}
			if last >= first {
				t.Fatalf("loss did not decrease: %v → %v", first, last)
			}
		})
	}
}
