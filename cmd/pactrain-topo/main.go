// Command pactrain-topo inspects the simulated network: it prints the
// topology, quotes point-to-point transfer times, and estimates one
// gradient synchronization for each paper model under every aggregation
// primitive — a what-if calculator for the communication side of the
// paper's evaluation.
//
// Example:
//
//	pactrain-topo -bw 100mbps
//	pactrain-topo -topology flat -world 4 -bw 1gbps
//	pactrain-topo -collective hierarchical -bw 100mbps
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pactrain/internal/collective"
	"pactrain/internal/metrics"
	"pactrain/internal/netsim"
	"pactrain/internal/nn"
)

func parseBandwidth(s string) (float64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(s, "gbps"):
		var v float64
		if _, err := fmt.Sscanf(s, "%fgbps", &v); err != nil {
			return 0, err
		}
		return v * netsim.Gbps, nil
	case strings.HasSuffix(s, "mbps"):
		var v float64
		if _, err := fmt.Sscanf(s, "%fmbps", &v); err != nil {
			return 0, err
		}
		return v * netsim.Mbps, nil
	}
	return 0, fmt.Errorf("bandwidth %q must end in mbps or gbps", s)
}

func main() {
	topoName := flag.String("topology", "fig4", "fig4|flat")
	bw := flag.String("bw", "1gbps", "bottleneck (fig4) or uniform (flat) bandwidth")
	world := flag.Int("world", 8, "worker count")
	batch := flag.Int("batch", 32, "per-GPU batch size for the compute estimate")
	collectiveAlgo := flag.String("collective", "", "collective algorithm pricing the estimates: ring|tree|hierarchical (empty = ring)")
	flag.Parse()

	bandwidth, err := parseBandwidth(*bw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pactrain-topo: %v\n", err)
		os.Exit(1)
	}
	algo, err := collective.AlgorithmByName(*collectiveAlgo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pactrain-topo: %v\n", err)
		os.Exit(1)
	}

	var topo *netsim.Topology
	switch *topoName {
	case "fig4":
		topo = netsim.Fig4Topology(netsim.Fig4Options{BottleneckBps: bandwidth})
	case "flat":
		topo = netsim.FlatTopology(*world, bandwidth, 1e-4)
	default:
		fmt.Fprintf(os.Stderr, "pactrain-topo: unknown topology %q\n", *topoName)
		os.Exit(1)
	}
	hosts := topo.Hosts()
	if len(hosts) < *world {
		fmt.Fprintf(os.Stderr, "pactrain-topo: topology has %d hosts for %d workers\n", len(hosts), *world)
		os.Exit(1)
	}
	hosts = hosts[:*world]

	fmt.Printf("topology %s, %d nodes, %d links, %d workers\n\n", *topoName, len(topo.Nodes), len(topo.Links), *world)
	for _, l := range topo.Links {
		fmt.Printf("  %-10s — %-10s  %8s  %.0fµs\n",
			topo.Nodes[l.A].Name, topo.Nodes[l.B].Name,
			fmtBw(l.BandwidthBps), l.LatencySec*1e6)
	}

	fabric := netsim.NewFabric(topo)
	fmt.Printf("\npoint-to-point quotes (10 MiB payload):\n")
	pairs := [][2]int{{0, 1}, {0, *world - 1}}
	for _, p := range pairs {
		dt, err := fabric.TransferTime(hosts[p[0]], hosts[p[1]], 10<<20, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pactrain-topo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  %s → %s: %s\n", topo.Nodes[hosts[p[0]]].Name, topo.Nodes[hosts[p[1]]].Name,
			metrics.FormatSeconds(dt))
	}

	fmt.Printf("\nper-iteration gradient synchronization estimates (%s collective):\n", algo.Name())
	tb := metrics.NewTable("", "model", "grad size", algo.Name()+" all-reduce", "PS", "PacTrain(0.5)+ternary", "compute/iter")
	for _, prof := range nn.Profiles() {
		n := int(prof.Params)
		fresh := func() *netsim.Fabric { return netsim.NewFabric(topo) }
		// The symmetric collectives price under the selected algorithm; the
		// parameter server is a scheme topology of its own and always
		// prices the same way (see collective.Algorithm).
		ar := algo.AllReduce(fresh(), hosts, n, collective.WireFP32, 0)
		ps := collective.CostPSAggregate(fresh(), hosts, n, collective.WireFP32, 0)
		pac := algo.AllReduce(fresh(), hosts, n/2, collective.WireInt8, 0)
		iterCompute := float64(prof.FLOPsPerSample) * float64(*batch) * 3 / (37.4e12 * 0.35)
		tb.AddRow(prof.Name,
			metrics.FormatBytes(float64(prof.GradBytes())),
			metrics.FormatSeconds(ar), metrics.FormatSeconds(ps), metrics.FormatSeconds(pac),
			metrics.FormatSeconds(iterCompute))
	}
	fmt.Print(tb.String())
	fmt.Printf("\n(compute model: A40 @ 37.4 TFLOP/s fp32, 35%% efficiency, backward = 2× forward)\n")
}

func fmtBw(bps float64) string {
	if bps >= netsim.Gbps {
		return fmt.Sprintf("%g Gbps", bps/netsim.Gbps)
	}
	return fmt.Sprintf("%g Mbps", bps/netsim.Mbps)
}
