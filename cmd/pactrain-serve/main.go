// Command pactrain-serve runs the experiment harness as a long-running
// HTTP/JSON service. One engine — with its singleflight table and on-disk
// run cache — lives for the whole process, so every client's (experiment,
// options) query shares the train-once/re-cost economy that pactrain-bench
// only gets within a single invocation.
//
// Usage:
//
//	pactrain-serve -addr :8080 -parallel 4 -cache .pactrain-cache
//
//	curl -s localhost:8080/v1/experiments
//	curl -s -X POST localhost:8080/v1/experiments \
//	     -d '{"experiment":"fig3","quick":true}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -s localhost:8080/v1/jobs/j000001/result
//	curl -s localhost:8080/v1/jobs/j000001/audit    # counterfactual ledgers
//	curl -sN localhost:8080/v1/jobs/j000001/events   # live SSE stream
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics
//
// -log-format json switches the process log to one JSON object per
// observable event (job transitions, engine activity, trainer heartbeats) —
// the same schema the SSE stream's data frames carry.
//
// -pprof additionally exposes net/http/pprof under /debug/pprof/ for live
// CPU/heap profiling of the serving process; it is off by default.
//
// SIGINT/SIGTERM begin a graceful drain: new submissions are rejected
// (healthz flips to 503 so load balancers stop routing), accepted jobs
// finish, then the HTTP listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pactrain/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallel := flag.Int("parallel", 4, "concurrent training jobs inside the engine")
	cacheDir := flag.String("cache", ".pactrain-cache", "directory for the on-disk run cache (empty = disabled)")
	workers := flag.Int("workers", 2, "concurrently running experiment jobs")
	queueDepth := flag.Int("queue", 64, "accepted-but-unstarted job limit")
	history := flag.Int("history", 256, "retained finished-job records (oldest evict past this)")
	memoLimit := flag.Int("memo-limit", 0, "in-memory trained-result memo bound; disk-persisted entries evict past this (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Minute, "how long shutdown waits for accepted jobs")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	logFormat := flag.String("log-format", "text", "log shape: text (human lines) or json (one event object per line, the SSE payload schema)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default)")
	flag.Parse()

	if *logFormat != "text" && *logFormat != "json" {
		fmt.Fprintf(os.Stderr, "pactrain-serve: unknown -log-format %q (valid: text, json)\n", *logFormat)
		os.Exit(2)
	}
	var logw io.Writer = os.Stderr
	if *quiet {
		logw = io.Discard
	}
	// The process banner and drain notices are human lines; in json mode the
	// log stream must stay one event object per line.
	banner := logw
	if *logFormat == "json" {
		banner = io.Discard
	}
	s, err := serve.New(serve.Options{
		Parallelism:  *parallel,
		CacheDir:     *cacheDir,
		MemoLimit:    *memoLimit,
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		HistoryLimit: *history,
		Log:          logw,
		LogFormat:    *logFormat,
		PProf:        *pprofFlag,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pactrain-serve: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintf(banner, "pactrain-serve: signal received, draining\n")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := s.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(banner, "pactrain-serve: drain incomplete: %v\n", err)
		}
		// Keep serving polls until the drain finishes, then close the
		// listener so in-flight responses flush.
		closeCtx, cancelClose := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancelClose()
		_ = httpSrv.Shutdown(closeCtx)
	}()

	fmt.Fprintf(banner, "pactrain-serve: listening on %s (engine parallelism %d, %d workers)\n",
		*addr, *parallel, *workers)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "pactrain-serve: %v\n", err)
		os.Exit(1)
	}
}
