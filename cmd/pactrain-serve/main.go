// Command pactrain-serve runs the experiment harness as a long-running
// HTTP/JSON service. One engine — with its singleflight table and on-disk
// run cache — lives for the whole process, so every client's (experiment,
// options) query shares the train-once/re-cost economy that pactrain-bench
// only gets within a single invocation.
//
// Usage:
//
//	pactrain-serve -addr :8080 -parallel 4 -cache .pactrain-cache
//
//	curl -s localhost:8080/v1/experiments
//	curl -s -X POST localhost:8080/v1/experiments \
//	     -d '{"experiment":"fig3","quick":true}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -s localhost:8080/v1/jobs/j000001/result
//	curl -s localhost:8080/v1/jobs/j000001/audit    # counterfactual ledgers
//	curl -sN localhost:8080/v1/jobs/j000001/events   # live SSE stream
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics
//
// Scaling out: instances started with -cache-peers and a unique -peer-id
// form one logical cache — a local miss consults every peer (and their
// in-flight trainings) before training, so a fingerprint trains once per
// cluster, not once per instance:
//
//	pactrain-serve -addr :8080 -peer-id a -cache c-a -cache-peers http://b:8080
//	pactrain-serve -addr :8081 -peer-id b -cache c-b -cache-peers http://a:8080
//
// -rate-limit puts a per-client token bucket in front of the queue; both
// rate-limit and queue-full rejections are 429s carrying a Retry-After
// derived from the observed drain rate. pactrain-loadgen drives a group of
// instances and reports the throughput and latency clients experienced.
//
// -log-format json switches the process log to one JSON object per
// observable event (job transitions, engine activity, trainer heartbeats) —
// the same schema the SSE stream's data frames carry.
//
// -pprof additionally exposes net/http/pprof under /debug/pprof/ for live
// CPU/heap profiling of the serving process; it is off by default.
//
// SIGINT/SIGTERM begin a graceful drain: new submissions are rejected
// (healthz flips to 503 so load balancers stop routing), accepted jobs
// finish, then the HTTP listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pactrain/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallel := flag.Int("parallel", 4, "concurrent training jobs inside the engine")
	cacheDir := flag.String("cache", ".pactrain-cache", "directory for the on-disk run cache (empty = disabled)")
	workers := flag.Int("workers", 2, "concurrently running experiment jobs")
	queueDepth := flag.Int("queue", 64, "accepted-but-unstarted job limit")
	history := flag.Int("history", 256, "retained finished-job records (oldest evict past this)")
	memoLimit := flag.Int("memo-limit", 0, "in-memory trained-result memo bound; disk-persisted entries evict past this (0 = unlimited)")
	cachePeers := flag.String("cache-peers", "", "comma-separated base URLs of sibling instances; local cache misses consult them before training (requires -peer-id)")
	peerID := flag.String("peer-id", "", "stable unique name of this instance in the cache-peer group (symmetric races break by ID order)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client sustained submissions/sec; past it submissions 429 with Retry-After (0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "per-client token-bucket burst capacity (default 1 when -rate-limit is set)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Minute, "how long shutdown waits for accepted jobs")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	logFormat := flag.String("log-format", "text", "log shape: text (human lines) or json (one event object per line, the SSE payload schema)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default)")
	flag.Parse()

	if *logFormat != "text" && *logFormat != "json" {
		fmt.Fprintf(os.Stderr, "pactrain-serve: unknown -log-format %q (valid: text, json)\n", *logFormat)
		os.Exit(2)
	}
	var peers []string
	for _, p := range strings.Split(*cachePeers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, strings.TrimRight(p, "/"))
		}
	}
	if len(peers) > 0 && *peerID == "" {
		fmt.Fprintln(os.Stderr, "pactrain-serve: -cache-peers requires -peer-id (the peer protocol breaks ties by instance name)")
		os.Exit(2)
	}
	var logw io.Writer = os.Stderr
	if *quiet {
		logw = io.Discard
	}
	// The process banner and drain notices are human lines; in json mode the
	// log stream must stay one event object per line.
	banner := logw
	if *logFormat == "json" {
		banner = io.Discard
	}
	s, err := serve.New(serve.Options{
		Parallelism:  *parallel,
		CacheDir:     *cacheDir,
		MemoLimit:    *memoLimit,
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		RateLimit:    *rateLimit,
		RateBurst:    *rateBurst,
		CachePeers:   peers,
		PeerID:       *peerID,
		HistoryLimit: *history,
		Log:          logw,
		LogFormat:    *logFormat,
		PProf:        *pprofFlag,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pactrain-serve: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintf(banner, "pactrain-serve: signal received, draining\n")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := s.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(banner, "pactrain-serve: drain incomplete: %v\n", err)
		}
		// Keep serving polls until the drain finishes, then close the
		// listener so in-flight responses flush.
		closeCtx, cancelClose := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancelClose()
		_ = httpSrv.Shutdown(closeCtx)
	}()

	fmt.Fprintf(banner, "pactrain-serve: listening on %s (engine parallelism %d, %d workers)\n",
		*addr, *parallel, *workers)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "pactrain-serve: %v\n", err)
		os.Exit(1)
	}
}
