// Command pactrain-bench regenerates the tables and figures of the
// PacTrain paper's evaluation section.
//
// Usage:
//
//	pactrain-bench -exp fig3              # Fig. 3 TTA grid (all bandwidths)
//	pactrain-bench -exp fig5              # Fig. 5 accuracy-vs-time curves
//	pactrain-bench -exp fig6              # Fig. 6 pruning-ratio sweep
//	pactrain-bench -exp table1            # Table 1 property matrix
//	pactrain-bench -exp ablation-mt       # Mask Tracker window ablation
//	pactrain-bench -exp all -quick        # everything, fast settings
//
// Full-fidelity runs train the four lite-twin models for 12 epochs each and
// take minutes of wall time; -quick substitutes the MLP twin and finishes
// in seconds while exercising identical code paths.
package main

import (
	"flag"
	"fmt"
	"os"

	"pactrain"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table1|fig3|fig5|fig6|ablation-mt|ablation-tern|ablation-topo|ablation-varbw|all")
	quick := flag.Bool("quick", false, "fast settings (MLP twin, smaller sweeps)")
	world := flag.Int("world", 8, "number of distributed workers")
	samples := flag.Int("samples", 0, "synthetic training samples (0 = preset default)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	flag.Parse()

	opt := pactrain.Options{
		Quick:   *quick,
		World:   *world,
		Samples: *samples,
		Seed:    *seed,
	}
	if !*quiet {
		opt.Log = os.Stderr
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = pactrain.ExperimentIDs()
	}
	for _, id := range ids {
		report, err := pactrain.Experiment(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pactrain-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("==== %s ====\n\n%s\n", id, report.Render())
	}
}
