// Command pactrain-bench regenerates the tables and figures of the
// PacTrain paper's evaluation section.
//
// Usage:
//
//	pactrain-bench -exp fig3              # Fig. 3 TTA grid (all bandwidths)
//	pactrain-bench -exp fig5              # Fig. 5 accuracy-vs-time curves
//	pactrain-bench -exp fig6              # Fig. 6 pruning-ratio sweep
//	pactrain-bench -exp table1            # Table 1 property matrix
//	pactrain-bench -exp ablation-mt       # Mask Tracker window ablation
//	pactrain-bench -exp all -quick        # everything, fast settings
//	pactrain-bench -exp all -parallel 4   # overlap independent trainings
//	pactrain-bench -exp all -cache .pactrain-cache   # reuse recorded runs
//	pactrain-bench -exp fig3 -json        # machine-readable report
//	pactrain-bench -exp collectives       # ring/tree/hierarchical grid
//	pactrain-bench -exp adaptive          # online controller vs static formats
//	pactrain-bench -exp stragglers        # heterogeneous-compute straggler grid
//	pactrain-bench -exp fig3 -collective hierarchical   # re-price every job
//	pactrain-bench -exp fig3 -overlap backward   # hide comm under backward
//	pactrain-bench -list-schemes          # aggregation-scheme catalog
//	pactrain-bench -list-collectives      # collective-algorithm catalog
//
// Full-fidelity runs train the four lite-twin models for 12 epochs each and
// take minutes of wall time; -quick substitutes the MLP twin and finishes
// in seconds while exercising identical code paths.
//
// All experiments share one run engine: identical (model, scheme, seed)
// trainings are deduplicated across experiments within the invocation, and
// with -cache also across invocations. Reports are byte-identical at any
// -parallel setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pactrain"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table1|fig3|fig5|fig6|ablation-mt|ablation-tern|ablation-topo|ablation-varbw|collectives|adaptive|stragglers|all")
	quick := flag.Bool("quick", false, "fast settings (MLP twin, smaller sweeps)")
	world := flag.Int("world", 8, "number of distributed workers")
	samples := flag.Int("samples", 0, "synthetic training samples (0 = preset default)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	collectiveAlgo := flag.String("collective", "", "collective algorithm for every job: ring|tree|hierarchical (empty = ring)")
	overlap := flag.String("overlap", "", "backward-overlap model for every job: none|backward (empty = none)")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	parallel := flag.Int("parallel", 1, "concurrent training jobs")
	cacheDir := flag.String("cache", "", "directory for the on-disk run cache (empty = disabled)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON reports instead of text")
	listSchemes := flag.Bool("list-schemes", false, "print the aggregation-scheme catalog and exit")
	listCollectives := flag.Bool("list-collectives", false, "print the collective-algorithm catalog and exit")
	flag.Parse()

	if *listSchemes {
		for _, s := range pactrain.SchemeCatalog() {
			alias := ""
			if len(s.Aliases) > 0 {
				alias = fmt.Sprintf(" (aliases: %s)", strings.Join(s.Aliases, ", "))
			}
			fmt.Printf("%-18s %s%s\n", s.Name, s.Description, alias)
		}
		return
	}
	if *listCollectives {
		for _, a := range pactrain.CollectiveCatalog() {
			fmt.Printf("%-18s %s\n", a.Name, a.Description)
		}
		return
	}
	if _, err := pactrain.CanonicalCollective(*collectiveAlgo); err != nil {
		fmt.Fprintf(os.Stderr, "pactrain-bench: %v\n", err)
		os.Exit(2)
	}
	if _, err := pactrain.ParseOverlap(*overlap); err != nil {
		fmt.Fprintf(os.Stderr, "pactrain-bench: %v\n", err)
		os.Exit(2)
	}

	opt := pactrain.Options{
		Quick:       *quick,
		World:       *world,
		Samples:     *samples,
		Seed:        *seed,
		Collective:  *collectiveAlgo,
		Overlap:     *overlap,
		Parallelism: *parallel,
		CacheDir:    *cacheDir,
	}
	if !*quiet {
		opt.Log = os.Stderr
	}
	// One engine for the whole invocation: experiments share trained runs.
	eng := pactrain.NewExperimentEngine(opt)
	opt.Engine = eng

	ids := []string{*exp}
	if *exp == "all" {
		ids = pactrain.ExperimentIDs()
	} else if _, ok := pactrain.LookupExperiment(*exp); !ok {
		fmt.Fprintf(os.Stderr, "pactrain-bench: unknown experiment %q; valid ids: %s, all\n",
			*exp, strings.Join(pactrain.ExperimentIDs(), ", "))
		os.Exit(2)
	}
	for _, id := range ids {
		report, err := pactrain.Experiment(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pactrain-bench: %v\n", err)
			os.Exit(1)
		}
		if *asJSON {
			raw, err := pactrain.ExperimentJSON(id, opt, report)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pactrain-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%s\n", raw)
		} else {
			fmt.Printf("==== %s ====\n\n%s\n", id, report.Render())
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "engine: %s\n", eng.Stats().Summary())
	}
}
