// Command pactrain-bench regenerates the tables and figures of the
// PacTrain paper's evaluation section.
//
// Usage:
//
//	pactrain-bench -exp fig3              # Fig. 3 TTA grid (all bandwidths)
//	pactrain-bench -exp fig5              # Fig. 5 accuracy-vs-time curves
//	pactrain-bench -exp fig6              # Fig. 6 pruning-ratio sweep
//	pactrain-bench -exp table1            # Table 1 property matrix
//	pactrain-bench -exp ablation-mt       # Mask Tracker window ablation
//	pactrain-bench -exp all -quick        # everything, fast settings
//	pactrain-bench -exp all -parallel 4   # overlap independent trainings
//	pactrain-bench -exp all -cache .pactrain-cache   # reuse recorded runs
//	pactrain-bench -exp fig3 -json        # machine-readable report
//	pactrain-bench -exp collectives       # ring/tree/hierarchical grid
//	pactrain-bench -exp adaptive          # online controller vs static formats
//	pactrain-bench -exp stragglers        # heterogeneous-compute straggler grid
//	pactrain-bench -exp fig3 -collective hierarchical   # re-price every job
//	pactrain-bench -exp fig3 -overlap backward   # hide comm under backward
//	pactrain-bench -list-schemes          # aggregation-scheme catalog
//	pactrain-bench -list-collectives      # collective-algorithm catalog
//	pactrain-bench -perf                  # perf lane: write BENCH_full.json
//	pactrain-bench -perf -quick -perf-compare BENCH_quick.json   # CI check
//	pactrain-bench -exp all -cpuprofile cpu.pprof   # profile a run
//	pactrain-bench -exp stragglers -quick -trace trace.json -trace-summary
//	                                      # per-rank Perfetto timeline
//	pactrain-bench -exp adaptive -quick -audit audit.json -audit-summary
//	                                      # counterfactual regret ledger
//
// Full-fidelity runs train the four lite-twin models for 12 epochs each and
// take minutes of wall time; -quick substitutes the MLP twin and finishes
// in seconds while exercising identical code paths.
//
// The perf lane (-perf) runs the pinned macro-benchmark grid from DESIGN.md
// §10 — timeline composition at 64/1,024/4,096 ranks, the parallel
// compression kernels, and the largescale pricing experiment — and writes
// BENCH_<grid>.json. With -perf-compare it diffs the run against a committed
// baseline, normalizing by the calibration entry, and exits non-zero when
// any benchmark slowed by more than 10%.
//
// All experiments share one run engine: identical (model, scheme, seed)
// trainings are deduplicated across experiments within the invocation, and
// with -cache also across invocations. Reports are byte-identical at any
// -parallel setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pactrain"
	"pactrain/internal/loadgen"
	"pactrain/internal/prof"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table1|fig3|fig5|fig6|ablation-mt|ablation-tern|ablation-topo|ablation-varbw|collectives|adaptive|stragglers|largescale|all")
	quick := flag.Bool("quick", false, "fast settings (MLP twin, smaller sweeps)")
	world := flag.Int("world", 8, "number of distributed workers")
	samples := flag.Int("samples", 0, "synthetic training samples (0 = preset default)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	collectiveAlgo := flag.String("collective", "", "collective algorithm for every job: ring|tree|hierarchical (empty = ring)")
	overlap := flag.String("overlap", "", "backward-overlap model for every job: none|backward (empty = none)")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	parallel := flag.Int("parallel", 1, "concurrent training jobs")
	cacheDir := flag.String("cache", "", "directory for the on-disk run cache (empty = disabled)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON reports instead of text")
	listSchemes := flag.Bool("list-schemes", false, "print the aggregation-scheme catalog and exit")
	listCollectives := flag.Bool("list-collectives", false, "print the collective-algorithm catalog and exit")
	perf := flag.Bool("perf", false, "run the pinned perf-regression grid instead of experiments")
	perfServe := flag.Bool("perf-serve", true, "include the serve-throughput entries (loadgen against an in-process 2-instance cache-peer pair) in the perf grid")
	perfOut := flag.String("perf-out", "", "perf report output path (default BENCH_<grid>.json)")
	perfCompare := flag.String("perf-compare", "", "baseline BENCH_*.json to diff the perf run against; regressions >10% exit non-zero")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of every traced run to this file (open in Perfetto)")
	traceSummary := flag.Bool("trace-summary", false, "print the per-span aggregate of the collected trace to stderr (requires -trace)")
	validateTrace := flag.Bool("validate-trace", false, "structurally validate the written trace file; exit non-zero on failure (requires -trace)")
	auditPath := flag.String("audit", "", "write the counterfactual audit ledger (controller regret + cost-model calibration) as JSON to this file")
	auditSummary := flag.Bool("audit-summary", false, "print the regret/calibration/switch tables of the collected audit to stderr (requires -audit)")
	auditStaleness := flag.Float64("audit-staleness", 0, "age the audit's bandwidth observations by this many seconds to probe calibration drift (requires -audit)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pactrain-bench: %v\n", err)
		os.Exit(2)
	}
	defer stopProfiles()
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	if *perf {
		popt := pactrain.PerfOptions{Quick: *quick}
		if !*quiet {
			popt.Log = os.Stderr
		}
		if *perfServe {
			// The serve-* entries boot a two-instance cache-peer pair in
			// process and measure a load run against it; the train-fraction
			// entry keeps cross-instance dedup under the same 10% gate as
			// the kernels.
			popt.Extra = loadgen.PerfCases(*quick, popt.Log)
		}
		report := pactrain.RunPerf(popt)
		out := *perfOut
		if out == "" {
			out = pactrain.BenchPath(report.Grid)
		}
		if err := pactrain.WriteBench(out, report); err != nil {
			fmt.Fprintf(os.Stderr, "pactrain-bench: %v\n", err)
			exit(1)
		}
		fmt.Printf("perf grid %q: %d benchmarks -> %s\n", report.Grid, len(report.Entries), out)
		if *perfCompare != "" {
			base, err := pactrain.LoadBench(*perfCompare)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pactrain-bench: %v\n", err)
				exit(1)
			}
			if regressions := pactrain.CompareBench(base, report, pactrain.BenchTolerance); len(regressions) > 0 {
				fmt.Fprintf(os.Stderr, "pactrain-bench: perf regressions vs %s:\n", *perfCompare)
				for _, line := range regressions {
					fmt.Fprintf(os.Stderr, "  %s\n", line)
				}
				exit(1)
			}
			fmt.Printf("perf: no regressions vs %s (tolerance %d%%)\n",
				*perfCompare, int(pactrain.BenchTolerance*100))
		}
		return
	}

	if *listSchemes {
		for _, s := range pactrain.SchemeCatalog() {
			alias := ""
			if len(s.Aliases) > 0 {
				alias = fmt.Sprintf(" (aliases: %s)", strings.Join(s.Aliases, ", "))
			}
			fmt.Printf("%-18s %s%s\n", s.Name, s.Description, alias)
		}
		return
	}
	if *listCollectives {
		for _, a := range pactrain.CollectiveCatalog() {
			fmt.Printf("%-18s %s\n", a.Name, a.Description)
		}
		return
	}
	if _, err := pactrain.CanonicalCollective(*collectiveAlgo); err != nil {
		fmt.Fprintf(os.Stderr, "pactrain-bench: %v\n", err)
		exit(2)
	}
	if _, err := pactrain.ParseOverlap(*overlap); err != nil {
		fmt.Fprintf(os.Stderr, "pactrain-bench: %v\n", err)
		exit(2)
	}

	opt := pactrain.Options{
		Quick:       *quick,
		World:       *world,
		Samples:     *samples,
		Seed:        *seed,
		Collective:  *collectiveAlgo,
		Overlap:     *overlap,
		Parallelism: *parallel,
		CacheDir:    *cacheDir,
	}
	if !*quiet {
		opt.Log = os.Stderr
	}
	var tracer *pactrain.Tracer
	if *tracePath != "" {
		tracer = pactrain.NewTracer()
		opt.Tracer = tracer
	} else if *traceSummary || *validateTrace {
		fmt.Fprintf(os.Stderr, "pactrain-bench: -trace-summary and -validate-trace require -trace\n")
		exit(2)
	}
	var auditor *pactrain.Auditor
	if *auditPath != "" {
		auditor = pactrain.NewAuditor()
		opt.Auditor = auditor
		opt.AuditStaleness = *auditStaleness
	} else if *auditSummary || *auditStaleness != 0 {
		fmt.Fprintf(os.Stderr, "pactrain-bench: -audit-summary and -audit-staleness require -audit\n")
		exit(2)
	}
	// One engine for the whole invocation: experiments share trained runs.
	eng := pactrain.NewExperimentEngine(opt)
	opt.Engine = eng

	ids := []string{*exp}
	if *exp == "all" {
		ids = pactrain.ExperimentIDs()
	} else if _, ok := pactrain.LookupExperiment(*exp); !ok {
		fmt.Fprintf(os.Stderr, "pactrain-bench: unknown experiment %q; valid ids: %s, all\n",
			*exp, strings.Join(pactrain.ExperimentIDs(), ", "))
		exit(2)
	}
	for _, id := range ids {
		report, err := pactrain.Experiment(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pactrain-bench: %v\n", err)
			exit(1)
		}
		if *asJSON {
			raw, err := pactrain.ExperimentJSON(id, opt, report)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pactrain-bench: %v\n", err)
				exit(1)
			}
			fmt.Printf("%s\n", raw)
		} else {
			fmt.Printf("==== %s ====\n\n%s\n", id, report.Render())
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "engine: %s\n", eng.Stats().Summary())
	}
	if tracer != nil {
		if err := pactrain.WriteTrace(tracer, *tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "pactrain-bench: %v\n", err)
			exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "trace: %d runs -> %s\n", tracer.Runs(), *tracePath)
		}
		if *traceSummary {
			fmt.Fprint(os.Stderr, pactrain.TraceSummary(tracer))
		}
		if *validateTrace {
			if err := pactrain.ValidateTraceFile(*tracePath); err != nil {
				fmt.Fprintf(os.Stderr, "pactrain-bench: trace validation: %v\n", err)
				exit(1)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "trace: %s validates\n", *tracePath)
			}
		}
	}
	if auditor != nil {
		reports := auditor.Reports()
		if err := pactrain.WriteAuditReports(*auditPath, reports); err != nil {
			fmt.Fprintf(os.Stderr, "pactrain-bench: %v\n", err)
			exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "audit: %d ledgers -> %s\n", len(reports), *auditPath)
		}
		if *auditSummary {
			fmt.Fprint(os.Stderr, pactrain.AuditSummary(reports))
		}
	}
}
