// Command pactrain-loadgen drives one or more pactrain-serve instances with
// an open-loop load profile and reports what clients experienced: delivered
// jobs/sec, p50/p99 submit-to-done latency, how much of the arriving work
// trained versus resolving from coalescing, dedup, and the cache tiers, and
// — against a cache-peer group — the cross-instance hit ratio.
//
// Usage:
//
//	pactrain-loadgen -targets http://a:8080,http://b:8080
//	pactrain-loadgen -targets http://localhost:8080 -count 100 -rate 50
//	pactrain-loadgen -targets http://a:8080,http://b:8080 -dup 0.6 -recost 0.2
//	pactrain-loadgen -targets http://localhost:8080 -json
//
// Arrivals are scheduled on the clock (open loop): the generator keeps
// submitting at -rate even while the service is saturated, so queue growth
// and 429 backpressure are measured rather than hidden. Rejected
// submissions honor the service's Retry-After before resubmitting. The mix
// is deterministic in -rng: -dup resubmits in-flight requests (exercising
// request coalescing and peer singleflight), -recost resubmits completed
// requests (exercising the cache tiers), and the remainder are fresh seeds
// that must train.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pactrain/internal/loadgen"
)

func main() {
	targets := flag.String("targets", "", "comma-separated base URLs of pactrain-serve instances (required)")
	count := flag.Int("count", 24, "total arrivals to generate")
	rate := flag.Float64("rate", 40, "open-loop arrival rate (submissions/sec)")
	dup := flag.Float64("dup", 0.5, "duplicate fraction of the mix (resubmits of issued requests)")
	recost := flag.Float64("recost", 0.25, "recost fraction of the mix (resubmits of completed requests)")
	exp := flag.String("exp", "ablation-tern", "experiment id every submission requests")
	quick := flag.Bool("quick", true, "submit quick grids")
	world := flag.Int("world", 2, "workers per submitted grid")
	samples := flag.Int("samples", 64, "synthetic training samples per submission")
	seed := flag.Uint64("seed", 100, "first config seed for unique submissions")
	rng := flag.Int64("rng", 1, "mix-draw RNG seed (same seed, same arrival sequence)")
	timeout := flag.Duration("timeout", 2*time.Minute, "whole-run deadline including completions")
	asJSON := flag.Bool("json", false, "emit the result as JSON instead of text")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	flag.Parse()

	if *targets == "" {
		fmt.Fprintln(os.Stderr, "pactrain-loadgen: -targets is required")
		flag.Usage()
		os.Exit(2)
	}
	var urls []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			urls = append(urls, strings.TrimRight(t, "/"))
		}
	}

	profile := loadgen.Profile{
		Count:      *count,
		Rate:       *rate,
		DupFrac:    *dup,
		RecostFrac: *recost,
		Experiment: *exp,
		Quick:      *quick,
		World:      *world,
		Samples:    *samples,
		BaseSeed:   *seed,
		RNGSeed:    *rng,
		Timeout:    *timeout,
	}
	if !*quiet {
		profile.Log = os.Stderr
	}
	res, err := loadgen.Run(urls, profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pactrain-loadgen: %v\n", err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "pactrain-loadgen: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("arrivals      %d (%d unique / %d duplicate / %d recost)\n",
			res.Arrivals, res.Unique, res.Duplicate, res.Recost)
		fmt.Printf("accepted      %d (%d coalesced, %d retried after 429, %d failed)\n",
			res.Accepted, res.Coalesced, res.Retried, res.Failed)
		fmt.Printf("throughput    %.2f jobs/sec over %.2fs wall\n", res.JobsPerSec, res.WallSeconds)
		fmt.Printf("submit-to-done p50 %.3fs  p99 %.3fs\n", res.P50DoneSeconds, res.P99DoneSeconds)
		fmt.Printf("trainings     %d (%.2f per arrival)\n", res.TrainedDelta, res.TrainFraction)
		fmt.Printf("cache         hit ratio %.2f, %d peer hits\n", res.CacheHitRatio, res.PeerHitsDelta)
	}
	if res.Failed > 0 {
		os.Exit(1)
	}
}
