// Command pactrain-train runs a single distributed training job with full
// control over the workload, aggregation scheme, pruning configuration, and
// simulated network, and reports the accuracy trajectory against simulated
// time.
//
// Examples:
//
//	pactrain-train -model ResNet152 -scheme pactrain-ternary -bw 100mbps
//	pactrain-train -model VGG19 -scheme topk-0.01 -epochs 8 -world 4
//	pactrain-train -model MLP -scheme all-reduce -csv
//	pactrain-train -scheme adaptive -adapt-margin 0.1 -adapt-candidates mask-compact-ternary,index-list
//	pactrain-train -overlap backward -straggler 2 -jitter 0.1   # per-rank timelines
//	pactrain-train -scheme pactrain-ternary -trace run.json -trace-summary
//	pactrain-train -scheme adaptive -audit audit.json -audit-summary
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"pactrain"
	"pactrain/internal/adaptive"
	"pactrain/internal/metrics"
	"pactrain/internal/par"
	"pactrain/internal/prof"
)

func parseBandwidth(s string) (float64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(s, "gbps"):
		var v float64
		if _, err := fmt.Sscanf(s, "%fgbps", &v); err != nil {
			return 0, err
		}
		return v * pactrain.Gbps, nil
	case strings.HasSuffix(s, "mbps"):
		var v float64
		if _, err := fmt.Sscanf(s, "%fmbps", &v); err != nil {
			return 0, err
		}
		return v * pactrain.Mbps, nil
	}
	return 0, fmt.Errorf("bandwidth %q must end in mbps or gbps", s)
}

func main() {
	model := flag.String("model", "ResNet18", "workload: VGG19|ResNet18|ResNet152|ViT-Base-16|MLP")
	scheme := flag.String("scheme", "pactrain-ternary", "aggregation scheme (see pactrain.Schemes)")
	collectiveAlgo := flag.String("collective", "", "collective algorithm: ring|tree|hierarchical (empty = ring)")
	overlap := flag.String("overlap", "", "backward-overlap model: none|backward (empty = none)")
	straggler := flag.Float64("straggler", 1, "one-slow-rank compute multiplier (1 = uniform cluster)")
	jitter := flag.Float64("jitter", 0, "per-iteration compute jitter fraction in [0,1)")
	bw := flag.String("bw", "1gbps", "Fig. 4 bottleneck bandwidth, e.g. 100mbps, 500mbps, 1gbps")
	world := flag.Int("world", 8, "number of workers")
	epochs := flag.Int("epochs", 12, "training epochs")
	batch := flag.Int("batch", 8, "per-worker batch size")
	lr := flag.Float64("lr", 0.1, "base learning rate (cosine-annealed)")
	pruneRatio := flag.Float64("prune-ratio", 0.5, "PacTrain pruning ratio")
	pruneMethod := flag.String("prune-method", "global-magnitude", "global-magnitude|layer-magnitude|grasp")
	pretrain := flag.Int("pretrain-epochs", 1, "dense warm-up epochs before pruning")
	window := flag.Int("stable-window", 2, "Mask Tracker stability window")
	samples := flag.Int("samples", 1024, "synthetic training samples")
	target := flag.Float64("target", 0.8, "target accuracy for TTA")
	seed := flag.Uint64("seed", 1, "run seed")
	csv := flag.Bool("csv", false, "emit the accuracy curve as CSV")
	adaptMargin := flag.Float64("adapt-margin", 0, "adaptive scheme: hysteresis win margin (0 = default)")
	adaptDwell := flag.Int("adapt-dwell", 0, "adaptive scheme: challenger rounds before a format switch (0 = default)")
	adaptCandidates := flag.String("adapt-candidates", "", "adaptive scheme: comma-separated candidate formats (empty = all)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (open in Perfetto)")
	traceSummary := flag.Bool("trace-summary", false, "print the per-span aggregate of the collected trace to stderr (requires -trace)")
	auditPath := flag.String("audit", "", "write the run's counterfactual audit ledger (controller regret + cost-model calibration) as JSON to this file")
	auditSummary := flag.Bool("audit-summary", false, "print the regret/calibration/switch tables of the audit to stderr (requires -audit)")
	auditStaleness := flag.Float64("audit-staleness", 0, "age the audit's bandwidth observations by this many seconds to probe calibration drift (requires -audit)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	kernelParallel := flag.Int("kernel-parallel", runtime.GOMAXPROCS(0),
		"worker budget for the model-compute and compression kernels (results are bit-identical at any value)")
	flag.Parse()

	par.SetBudget(*kernelParallel)

	stopProfiles, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pactrain-train: %v\n", err)
		os.Exit(2)
	}
	defer stopProfiles()

	bottleneck, err := parseBandwidth(*bw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pactrain-train: %v\n", err)
		os.Exit(1)
	}

	overlapMode, err := pactrain.ParseOverlap(*overlap)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pactrain-train: %v\n", err)
		os.Exit(2)
	}

	cfg := pactrain.DefaultConfig(*model, *scheme)
	cfg.World = *world
	cfg.Collective = *collectiveAlgo
	cfg.Overlap = overlapMode
	if *straggler != 1 {
		cfg.RankCompute.Multipliers = pactrain.OneSlowRank(*world, *straggler)
	}
	cfg.RankCompute.JitterFrac = *jitter
	cfg.RankCompute.JitterSeed = *seed
	cfg.BottleneckBps = bottleneck
	cfg.Epochs = *epochs
	cfg.BatchSize = *batch
	cfg.LR = *lr
	cfg.PruneRatio = *pruneRatio
	cfg.PretrainEpochs = *pretrain
	cfg.StableWindow = *window
	cfg.Data.Samples = *samples
	cfg.TargetAcc = *target
	cfg.Seed = *seed
	cfg.AdaptMargin = *adaptMargin
	cfg.AdaptDwell = *adaptDwell
	if *adaptCandidates != "" {
		cfg.AdaptCandidates = strings.Split(*adaptCandidates, ",")
	}
	switch *pruneMethod {
	case "global-magnitude":
		cfg.PruneMethod = pactrain.GlobalMagnitude
	case "layer-magnitude":
		cfg.PruneMethod = pactrain.LayerMagnitude
	case "grasp":
		cfg.PruneMethod = pactrain.GraSP
	default:
		fmt.Fprintf(os.Stderr, "pactrain-train: unknown prune method %q\n", *pruneMethod)
		os.Exit(1)
	}

	if *traceSummary && *tracePath == "" {
		fmt.Fprintf(os.Stderr, "pactrain-train: -trace-summary requires -trace\n")
		os.Exit(2)
	}
	if (*auditSummary || *auditStaleness != 0) && *auditPath == "" {
		fmt.Fprintf(os.Stderr, "pactrain-train: -audit-summary and -audit-staleness require -audit\n")
		os.Exit(2)
	}

	res, err := pactrain.Train(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pactrain-train: %v\n", err)
		os.Exit(1)
	}

	if *tracePath != "" {
		tracer := pactrain.NewTracer()
		pactrain.TraceRun(tracer, fmt.Sprintf("%s %s", res.Model, res.Scheme), cfg, res)
		if err := pactrain.WriteTrace(tracer, *tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "pactrain-train: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %s\n", *tracePath)
		if *traceSummary {
			fmt.Fprint(os.Stderr, pactrain.TraceSummary(tracer))
		}
	}

	if *auditPath != "" {
		rep, err := pactrain.AuditRun(fmt.Sprintf("%s %s", res.Model, res.Scheme), cfg, res,
			pactrain.AuditOptions{StalenessSec: *auditStaleness, IncludeRounds: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pactrain-train: %v\n", err)
			os.Exit(1)
		}
		if rep.DecidedRounds == 0 {
			fmt.Fprintf(os.Stderr, "audit: no controller decisions to ledger (scheme %q is static)\n", res.Scheme)
		}
		if err := pactrain.WriteAuditReports(*auditPath, []*pactrain.AuditReport{rep}); err != nil {
			fmt.Fprintf(os.Stderr, "pactrain-train: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "audit: %s\n", *auditPath)
		if *auditSummary {
			fmt.Fprint(os.Stderr, rep.Render())
		}
	}

	if *csv {
		fmt.Print(res.Curve.CSV())
		return
	}

	fmt.Printf("model        %s\n", res.Model)
	fmt.Printf("scheme       %s\n", res.Scheme)
	fmt.Printf("collective   %s\n", res.Collective)
	fmt.Printf("overlap      %s\n", overlapMode)
	fmt.Printf("workers      %d @ %s bottleneck (Fig. 4)\n", *world, *bw)
	if *straggler != 1 || *jitter > 0 {
		fmt.Printf("stragglers   last rank %g× slower, ±%.0f%% jitter\n", *straggler, *jitter*100)
	}
	fmt.Printf("iterations   %d over %d epochs\n", res.Iterations, res.EpochsRun)
	fmt.Printf("final acc    %.3f (best %.3f)\n", res.FinalAcc, res.BestAcc)
	fmt.Printf("sim time     %s\n", metrics.FormatSeconds(res.SimSeconds))
	if res.ReachedTarget {
		fmt.Printf("TTA(%.0f%%)     %s\n", *target*100, metrics.FormatSeconds(res.TTASeconds))
	} else {
		fmt.Printf("TTA(%.0f%%)     not reached (end of run: %s)\n", *target*100, metrics.FormatSeconds(res.TTASeconds))
	}
	fmt.Printf("comm time    %s across %d all-reduce / %d all-gather / %d PS ops\n",
		metrics.FormatSeconds(res.Stats.SimSeconds),
		res.Stats.AllReduceOps, res.Stats.AllGatherOps, res.Stats.PSOps)
	fmt.Printf("wire bytes   %s logical payload (ring-equivalent volume)\n", metrics.FormatBytes(res.Stats.PayloadBytes))
	if res.MaskSparsity > 0 {
		fmt.Printf("mask         %.1f%% pruned, %.1f%% of syncs on compact path\n",
			res.MaskSparsity*100, res.StableFraction*100)
	}
	if len(res.AdaptiveDecisions) > 0 {
		fmt.Printf("decisions    %s (%d switches)\n",
			adaptive.SummarizeCounts(res.AdaptiveDecisions), res.AdaptiveSwitches)
	}
	fmt.Printf("wall time    %.1fs\n", res.WallSeconds)
}
