package pactrain

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestFacadeTrain(t *testing.T) {
	cfg := DefaultConfig("MLP", "pactrain-ternary")
	cfg.World = 4
	cfg.Epochs = 3
	cfg.Data.Samples = 256
	cfg.BottleneckBps = 500 * Mbps
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || res.FinalAcc <= 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	wire := IterationWireBytes(res)
	if len(wire) != res.Iterations {
		t.Fatalf("wire bytes for %d iters, want %d", len(wire), res.Iterations)
	}
	// Compression must be visible: last-iteration bytes well below first.
	if wire[len(wire)-1] >= wire[0]/2 {
		t.Fatalf("no compression visible: first %v last %v", wire[0], wire[len(wire)-1])
	}
}

func TestFacadeSchemesAllRunnable(t *testing.T) {
	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			cfg := DefaultConfig("MLP", scheme)
			cfg.World = 2
			cfg.Epochs = 1
			cfg.Data.Samples = 64
			cfg.TestSamples = 32
			if _, err := Train(cfg); err != nil {
				t.Fatalf("%s: %v", scheme, err)
			}
		})
	}
}

func TestFacadeCompressorRegistry(t *testing.T) {
	c, err := NewCompressor("fp16", 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "fp16" {
		t.Fatalf("got %s", c.Name())
	}
	if _, err := NewCompressor("bogus", 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestFacadeTopologies(t *testing.T) {
	fig4 := Fig4Topology(100 * Mbps)
	if len(fig4.Hosts()) != 8 {
		t.Fatal("Fig4Topology should expose 8 hosts")
	}
	flat := FlatTopology(4, Gbps)
	if len(flat.Hosts()) != 4 {
		t.Fatal("FlatTopology host count")
	}
}

func TestFacadeProfilesAndWorkloads(t *testing.T) {
	if len(Profiles()) != 4 {
		t.Fatal("expected 4 paper profiles")
	}
	if len(PaperWorkloads()) != 4 {
		t.Fatal("expected 4 paper workloads")
	}
	cm := A40ComputeModel(1e9)
	if cm.IterSeconds(32) <= 0 {
		t.Fatal("compute model broken")
	}
}

func TestFacadeExperimentDispatch(t *testing.T) {
	if _, err := Experiment("not-an-experiment", Options{}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
	for _, id := range ExperimentIDs() {
		if id == "" {
			t.Fatal("empty experiment id")
		}
	}
	// Run the cheapest experiment end-to-end through the facade.
	report, err := Experiment("ablation-mt", Options{Quick: true, World: 2, Samples: 128, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.Render(), "stability window") {
		t.Fatal("report malformed")
	}
}

func TestFacadeEngineSharing(t *testing.T) {
	opt := Options{Quick: true, World: 2, Samples: 128, Seed: 4}
	opt.Engine = NewExperimentEngine(opt)
	// ablation-tern's pactrain-ternary job is a subset of table1's grid, so
	// a shared engine must satisfy it without new training.
	if _, err := Experiment("ablation-tern", opt); err != nil {
		t.Fatal(err)
	}
	trained := opt.Engine.Stats().Trained
	if _, err := Experiment("ablation-tern", opt); err != nil {
		t.Fatal(err)
	}
	s := opt.Engine.Stats()
	if s.Trained != trained {
		t.Fatalf("re-running an experiment trained again: %+v", s)
	}
	if s.Deduped == 0 {
		t.Fatal("no dedup recorded across experiments")
	}
}

func TestFacadeExperimentJSON(t *testing.T) {
	opt := Options{Quick: true, World: 2, Samples: 128, Seed: 4}
	rep, err := Experiment("ablation-mt", opt)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ExperimentJSON("ablation-mt", opt, rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string `json:"experiment"`
		Seed       uint64 `json:"seed"`
		Report     struct {
			Rows []struct {
				Window int
			}
		} `json:"report"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON report: %v\n%s", err, raw)
	}
	if doc.Experiment != "ablation-mt" || doc.Seed != 4 || len(doc.Report.Rows) != 4 {
		t.Fatalf("JSON report content wrong: %+v", doc)
	}
}

func TestFacadeFingerprint(t *testing.T) {
	a := DefaultConfig("MLP", "all-reduce")
	b := DefaultConfig("MLP", "all-reduce")
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("equal configs fingerprint differently")
	}
	b.Seed++
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("seed change did not move the fingerprint")
	}
}
